/**
 * @file
 * The declarative tenant-scenario API and the cloud-consolidation
 * engine built on it.
 *
 * The classic run API (sim/engine.hh) expresses "N homogeneous cores
 * running one workload profile". A consolidation study needs the
 * datacenter shape instead: many tenants with their own workloads,
 * footprints, and VM/ASID bindings, arriving and departing over the
 * run, overcommitting memory, migrating pages, and broadcasting TLB
 * shootdowns. ScenarioSpec describes that world declaratively —
 * either as an explicit TenantSpec list or through a churn generator
 * — and ScenarioEngine compiles it down to the existing machine via
 * the VM-ID/ASID tagging the SRAM TLBs already carry.
 *
 * Compilation model:
 *
 *  - every tenant vCPU becomes one TenantStream
 *    (trace/interleave.hh) pinned to home core `stream_id % cores`;
 *  - each core's timeline (warmup + measured references) is split at
 *    tenant arrival/departure boundaries into segments, and each
 *    segment is round-robin time-sliced (`timeSliceRefs` references
 *    per quantum) among the streams resident in it;
 *  - the per-reference execution loop is operation-for-operation the
 *    one in SimulationEngine::runPhase, so a scenario with a single
 *    always-resident tenant whose vCPUs cover every core reproduces
 *    the classic engine **byte-identically** (golden-checked in
 *    tests/test_scenario.cc);
 *  - tenant lifecycle events are modeled OS work: an arrival migrates
 *    pages (unmap + shootdown + remap), a mid-run departure broadcasts
 *    a VM-wide shootdown, and an optional storm schedule shoots down
 *    bursts of pages at a fixed reference interval (extending the
 *    bench_abl_shootdown path). Overcommit shrinks every tenant's
 *    resident footprint by the overcommit factor — the hot working
 *    set that stays mapped when guests' combined footprints exceed
 *    physical memory.
 *
 * The steady-state per-reference path allocates nothing (the PR 3
 * invariant): slice switches are index bumps into a precompiled
 * schedule, and per-tenant statistics are fixed counters plus a
 * Log2Histogram sample. Scenarios sustain 100–1000 tenants per run.
 *
 * Results export as the versioned `pomtlb-scenario-v1` document
 * (per-tenant hit ratios and translation-cycle p50/p95/p99 QoS
 * percentiles; docs/metrics.md), and scenario jobs are
 * content-hashed (scenarioHash) and memoized/journaled through the
 * same cache machinery as sweeps (runScenarioCampaign).
 */

#ifndef POMTLB_SIM_SCENARIO_HH
#define POMTLB_SIM_SCENARIO_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/json.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/engine.hh"
#include "sim/sweep_cache.hh"
#include "trace/interleave.hh"

namespace pomtlb
{

class Machine;
class ShardPool;

/** Schema identifier of the scenario export document. */
inline constexpr const char *kScenarioSchemaV1 = "pomtlb-scenario-v1";

/** One tenant: a guest VM running one workload. */
struct TenantSpec
{
    /** Display name; empty resolves to "t<index>". */
    std::string name;
    /** Workload profile (ProfileRegistry name). */
    std::string benchmark = "mcf";
    /** Virtual CPUs (streams) the tenant runs. */
    unsigned vcpus = 1;
    /** VM-ID binding; 0 auto-assigns 1 + tenant index. */
    VmId vm = 0;
    /** Process-id (ASID) base; 0 auto-assigns sequentially. */
    ProcessId pid = 0;
    /** Per-core reference position the tenant arrives at. */
    std::uint64_t arrivalRefs = 0;
    /** Per-core reference position the tenant departs at (0 = end). */
    std::uint64_t departureRefs = 0;
    /** Nominal footprint override; 0 uses the profile's. */
    Addr footprintBytes = 0;
    /**
     * When non-empty, this tenant's vCPU streams replay a
     * pomtlb-tracepack-v1 file (docs/trace-format.md) instead of
     * the synthetic generator: vCPU @c v reads pack stream
     * @c traceStream + v. Overrides ScenarioSpec::tracePack for
     * this tenant. The pack's content hash joins the scenario
     * identity, so memoized campaigns re-execute when the trace
     * changes.
     */
    std::string tracePack;
    /** First pack stream of this tenant (with @c tracePack). */
    std::uint32_t traceStream = 0;

    /** @name Fluent builders. */
    ///@{
    TenantSpec &withName(std::string n) { name = std::move(n); return *this; }
    TenantSpec &withBenchmark(std::string b) { benchmark = std::move(b); return *this; }
    TenantSpec &withVcpus(unsigned v) { vcpus = v; return *this; }
    TenantSpec &withVm(VmId v) { vm = v; return *this; }
    TenantSpec &withPid(ProcessId p) { pid = p; return *this; }
    TenantSpec &withArrival(std::uint64_t refs) { arrivalRefs = refs; return *this; }
    TenantSpec &withDeparture(std::uint64_t refs) { departureRefs = refs; return *this; }
    TenantSpec &withFootprint(Addr bytes) { footprintBytes = bytes; return *this; }
    TenantSpec &withTracePack(std::string path, std::uint32_t stream = 0)
    {
        tracePack = std::move(path);
        traceStream = stream;
        return *this;
    }
    ///@}
};

/**
 * TLB-shootdown storm schedule: every @c intervalRefs references
 * machine-wide, @c pagesPerBurst consecutive pages starting at the
 * triggering reference's page are shot down across all cores, each
 * charging EngineConfig::shootdownCycles to the initiating core.
 * 0 disables storms.
 */
struct StormSpec
{
    std::uint64_t intervalRefs = 0;
    unsigned pagesPerBurst = 8;
};

/**
 * A tenant after resolution: every defaulted field made concrete.
 * This is the canonical form — the identity JSON (and therefore the
 * scenario hash) is built from it, so an explicit tenant list and a
 * generator producing the same tenants hash identically.
 */
struct ResolvedTenant
{
    std::string name;
    std::string benchmark;
    unsigned vcpus = 1;
    VmId vm = 1;
    ProcessId pidBase = 1;
    std::uint64_t arrivalRefs = 0;
    /** Clamped to the per-core run length (0 resolved to it). */
    std::uint64_t departureRefs = 0;
    /** Effective resident footprint (after overcommit), in bytes. */
    Addr footprintBytes = 0;
    /** From the profile: vCPUs share one address space. */
    bool multithreaded = false;
    /** Trace pack backing this tenant's streams ("" = generator). */
    std::string tracePack;
    /** First pack stream; vCPU @c v reads stream base + v. */
    std::uint32_t traceStreamBase = 0;
};

/** A whole consolidation scenario, declaratively. */
struct ScenarioSpec
{
    /** Scenario name (recorded in the identity and export). */
    std::string name = "scenario";
    /** Translation scheme (registry name or alias). */
    std::string scheme = "POM-TLB";
    /** Machine geometry (numCores decides the core pool). */
    SystemConfig system = SystemConfig::table1();
    /**
     * Run length, warmup, seed, shootdown costs, prepopulate — all
     * honoured as in the classic engine. @c coreVm and @c pidBase
     * placement is superseded by the tenants' VM/ASID bindings
     * (pidBase seeds the sequential auto-assignment).
     */
    EngineConfig engine;

    /** Explicit tenant list; used when @c tenantCount is 0. */
    std::vector<TenantSpec> tenants;

    // --- tenant generator (used when tenantCount > 0) -------------
    /** Generate this many tenants instead of using @c tenants. */
    unsigned tenantCount = 0;
    /** Benchmarks cycled across generated tenants (default mcf). */
    std::vector<std::string> tenantBenchmarks;
    /**
     * Per-core reference distance between generated arrivals; 0
     * auto-spaces the overflow tenants evenly over the run.
     */
    std::uint64_t churnIntervalRefs = 0;
    /** Tenants resident per core at any instant (churn depth). */
    unsigned residentPerCore = 4;

    // --- consolidation knobs (generator and explicit lists) -------
    /**
     * Memory overcommit: guests' combined nominal footprints exceed
     * physical memory by this factor, so each tenant's resident
     * working set shrinks to nominal / overcommitFactor.
     */
    double overcommitFactor = 1.0;
    /** Pages migrated (unmap + shootdown + remap) per arrival. */
    std::uint64_t migrationPagesPerArrival = 0;
    /** TLB-shootdown storm schedule. */
    StormSpec storm;
    /** Round-robin quantum when streams share a core (0 = 2000). */
    std::uint64_t timeSliceRefs = 2000;
    /**
     * Scenario-wide trace pack: every tenant without its own
     * TenantSpec::tracePack replays this file, taking one pack
     * stream per vCPU in resolved-tenant order — exactly the
     * layout ScenarioEngine::recordPack() writes, so a recorded
     * scenario replays its generator-driven twin byte-identically
     * (`pomtlb scenario --trace-in`).
     */
    std::string tracePack;

    /**
     * Resolve to the canonical tenant list: expands the generator
     * (or defaults of the explicit list), assigns VM/ASID bindings,
     * clamps departures to the run length, and applies overcommit to
     * footprints. Fatal on unknown benchmarks, on a tenant arriving
     * at/after the run end, or on a generated placement that would
     * leave a core idle.
     */
    std::vector<ResolvedTenant> resolvedTenants() const;

    /** @name Fluent builders. */
    ///@{
    ScenarioSpec &withName(std::string n) { name = std::move(n); return *this; }
    ScenarioSpec &withScheme(std::string s) { scheme = std::move(s); return *this; }
    ScenarioSpec &withSystem(SystemConfig c) { system = std::move(c); return *this; }
    ScenarioSpec &withEngine(EngineConfig c) { engine = std::move(c); return *this; }
    ScenarioSpec &withTenant(TenantSpec tenant)
    {
        tenants.push_back(std::move(tenant));
        return *this;
    }
    ScenarioSpec &withTenantCount(unsigned count) { tenantCount = count; return *this; }
    ScenarioSpec &withTenantBenchmarks(std::vector<std::string> names)
    {
        tenantBenchmarks = std::move(names);
        return *this;
    }
    ScenarioSpec &withChurnInterval(std::uint64_t refs) { churnIntervalRefs = refs; return *this; }
    ScenarioSpec &withResidentPerCore(unsigned depth) { residentPerCore = depth; return *this; }
    ScenarioSpec &withOvercommit(double factor) { overcommitFactor = factor; return *this; }
    ScenarioSpec &withMigrationPages(std::uint64_t pages) { migrationPagesPerArrival = pages; return *this; }
    ScenarioSpec &withStorm(StormSpec s) { storm = s; return *this; }
    ScenarioSpec &withTimeSlice(std::uint64_t refs) { timeSliceRefs = refs; return *this; }
    ScenarioSpec &withTracePack(std::string path)
    {
        tracePack = std::move(path);
        return *this;
    }
    ///@}
};

/** Measured-phase results of one tenant. */
struct TenantResult
{
    std::string name;
    std::string benchmark;
    VmId vm = 1;
    ProcessId pidBase = 1;
    unsigned vcpus = 1;
    std::uint64_t arrivalRefs = 0;
    std::uint64_t departureRefs = 0;
    /** Whether the tenant departed (mid-run shootdown happened). */
    bool departed = false;

    std::uint64_t refs = 0;
    std::uint64_t l1TlbHits = 0;
    std::uint64_t l2TlbHits = 0;
    std::uint64_t lastLevelTlbMisses = 0;
    std::uint64_t translationCycles = 0;
    std::uint64_t pageWalks = 0;
    std::uint64_t shootdowns = 0;
    std::uint64_t migrations = 0;
    /** Per-reference translation-cycle distribution (QoS tail). */
    Log2Histogram translationLatency;
};

/** Whole-scenario results. */
struct ScenarioResult
{
    /** Per-core stats, exactly as the classic engine reports them. */
    RunResult run;
    /** Per-tenant results, in resolved-tenant order. */
    std::vector<TenantResult> tenants;
    /** Mid-run tenant departures in the measured phase. */
    std::uint64_t departures = 0;
    /** Pages migrated in the measured phase. */
    std::uint64_t migrations = 0;
    /** Storm-schedule shootdowns in the measured phase. */
    std::uint64_t stormShootdowns = 0;
};

/**
 * Drives one scenario through one machine. Construction compiles
 * the spec (streams + per-core slice schedules); run() executes
 * warmup and measured phases exactly like SimulationEngine::run.
 */
class ScenarioEngine
{
  public:
    /**
     * @param machine The machine to drive — must have been built
     *                with spec.system and spec.scheme.
     * @param spec    The scenario to compile and run.
     */
    ScenarioEngine(Machine &machine, const ScenarioSpec &spec);

    ~ScenarioEngine();

    /** Run warmup + measured phases; returns measured-phase stats. */
    ScenarioResult run();

    /**
     * Record every compiled stream's whole-run records into a
     * pomtlb-tracepack-v1 file at @p path: one pack stream per
     * tenant vCPU in resolved-tenant order, named
     * "&lt;tenant&gt;/&lt;vcpu&gt;", each holding exactly the
     * stream's scheduled reference count. Replaying the pack with
     * ScenarioSpec::tracePack reproduces this scenario's stats
     * document byte-identically. Call before run(); the streams
     * are rewound afterwards, so a subsequent run() is unaffected.
     * Throws TraceError if the pack cannot be written.
     */
    void recordPack(const std::string &path);

    /**
     * The scenario's statistics registry: one group per tenant
     * (counters, hit ratios, QoS percentiles, the latency
     * histogram), kept separate from the machine's registry so the
     * embedded `pomtlb-stats-v1` document stays byte-identical to a
     * classic run's.
     */
    const StatsRegistry &registry() const { return scenarioRegistry; }

    /** The resolved tenants this engine compiled. */
    const std::vector<ResolvedTenant> &resolved() const
    {
        return tenants;
    }

  private:
    /** One scheduled quantum of one stream on one core. */
    struct Slice
    {
        std::uint32_t stream = 0;
        std::uint64_t length = 0;
        /** First quantum of the stream (arrival actions fire). */
        bool firstOfStream = false;
        /** Last quantum of the stream (departure accounting). */
        bool lastOfStream = false;
    };

    /** Per-tenant runtime accounting (fixed storage, hot-path safe). */
    struct TenantRuntime
    {
        explicit TenantRuntime(const std::string &group_name)
            : group(group_name)
        {
        }

        std::uint64_t refs = 0;
        std::uint64_t l1Hits = 0;
        std::uint64_t l2Hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t translationCycles = 0;
        std::uint64_t pageWalks = 0;
        std::uint64_t shootdowns = 0;
        std::uint64_t migrations = 0;
        Log2Histogram latency;
        bool departed = false;
        /** Streams still scheduled (departure fires at zero). */
        unsigned activeStreams = 0;
        /** Arrival actions already performed (or not needed). */
        bool arrivalDone = false;
        /** Whether the tenant departs before the run ends. */
        bool departsMidRun = false;
        StatGroup group;
    };

    /** Per-core execution lane (mirrors SimulationEngine::Lane). */
    struct Lane
    {
        Cycles clock = 0;
        std::uint64_t phaseDone = 0;
        /** References left in the current slice. */
        std::uint64_t sliceLeft = 0;
        /** Index into the core's slice schedule. */
        std::size_t sliceIndex = 0;
        TenantStream *cursor = nullptr;
        Mmu *mmu = nullptr;
        InstCount instructions = 0;
        std::uint64_t pageWalks = 0;
        std::uint64_t shootdowns = 0;
    };

    void buildStreams();
    void buildSchedule();
    void buildRegistry();
    void prepopulate();
    /**
     * Sharded pre-population (engine.runThreads > 0): worker threads
     * scan and capture every tenant stream in parallel, each
     * emitting its stream's first-touch pages in order; the
     * coordinator installs the globally novel ones serially in
     * stream order — the serial prepopulate()'s exact
     * ensureMapped()/prewarm() sequence, so sharded scenarios stay
     * byte-identical (the scenario twin of
     * SimulationEngine::prepopulateSharded()).
     */
    void prepopulateSharded();
    void runPhase(std::uint64_t target);
    /** Switch @p lane to its next slice (lifecycle events fire). */
    void advanceSlice(Lane &lane, unsigned core, Cycles &clock);
    /** Arrival page migrations for tenant @p tenant_index. */
    void migratePages(unsigned tenant_index, Lane &lane,
                      Cycles &clock);

    Machine &machine;
    ScenarioSpec spec;
    EngineConfig engineConfig;
    std::uint64_t totalPerCore = 0;
    std::vector<ResolvedTenant> tenants;
    TenantStreamSet streams;
    /** schedule[core] = that core's slice sequence. */
    std::vector<std::vector<Slice>> schedule;
    /** Stable-address tenant runtimes (StatGroup is pinned). */
    std::deque<TenantRuntime> runtimes;
    StatGroup tenantsGroup{"tenants"};
    StatsRegistry scenarioRegistry;
    std::vector<Lane> lanes;
    /**
     * Worker pool for the order-free half of pre-population;
     * non-null only when engineConfig.runThreads > 0. The timed
     * scenario loop itself stays on the coordinating thread — it is
     * exactly the cross-core effect application that sharding must
     * serialize anyway (docs/internals.md §14).
     */
    std::unique_ptr<ShardPool> pool;
    bool captured = false;
    std::uint64_t refsSinceShootdown = 0;
    std::uint64_t refsSinceStorm = 0;
    std::uint64_t departures = 0;
    std::uint64_t migrations = 0;
    std::uint64_t stormShootdowns = 0;
};

/**
 * Convenience wrapper: compile and run @p spec on @p machine.
 * The machine must have been constructed with spec.system and
 * spec.scheme.
 */
ScenarioResult runScenario(Machine &machine, const ScenarioSpec &spec);

/**
 * The canonical JSON identity of a scenario: schema version, name,
 * canonical scheme name, the complete system/engine configuration
 * (shared serialisers with the sweep cache), the resolved tenant
 * list, and every consolidation knob. Any field that can change a
 * result changes this identity.
 */
JsonValue scenarioIdentityJson(const ScenarioSpec &spec);

/**
 * The scenario's content hash: 128-bit FNV-1a over the compact
 * identity serialisation — the cache and journal key of scenario
 * jobs, stable across processes and hosts.
 */
std::string scenarioHash(const ScenarioSpec &spec);

/**
 * Benchmark label of a scenario: the distinct tenant benchmarks in
 * first-appearance order, joined with '+' (a single-workload
 * scenario labels itself exactly like the classic run).
 */
std::string scenarioBenchmarkLabel(const ScenarioSpec &spec);

/**
 * Build the `pomtlb-scenario-v1` document for a finished scenario:
 * identity + hash, per-tenant results (hit ratios, p50/p95/p99
 * translation-cycle percentiles, the latency histogram), lifecycle
 * event totals, and the embedded `pomtlb-stats-v1` document under
 * `stats` (byte-identical to a classic run's for the degenerate
 * single-tenant scenario).
 */
JsonValue buildScenarioDocument(Machine &machine,
                                const ScenarioSpec &spec,
                                const ScenarioResult &result);

/** Per-scenario completion report of a campaign run. */
struct ScenarioJobReport
{
    std::size_t index = 0;      /**< Position in the spec vector. */
    std::string name;           /**< ScenarioSpec::name. */
    std::string hash;           /**< The scenario's content hash. */
    JobSource source = JobSource::Executed; /**< Result origin. */
    /** Host wall seconds actually spent (0 for cache/journal). */
    double wallSeconds = 0.0;
};

/** Knobs of one scenario campaign (mirrors SweepServiceOptions). */
struct ScenarioCampaignOptions
{
    /** Result-cache directory; empty disables memoization. */
    std::string cacheDir;
    /** Checkpoint-journal path; empty disables checkpointing. */
    std::string journalPath;
    /** Worker threads (0 = all hardware threads). */
    unsigned jobs = 1;
    /** Fault injection: _Exit(137) after this many journal appends. */
    unsigned crashAfterAppends = 0;
};

/**
 * Run a list of scenarios as a memoized, checkpointed campaign:
 * every spec is content-hashed, satisfied from the journal or the
 * result cache when possible, and only the delta executes (on a
 * small worker pool). Results emit strictly in request order and
 * the returned document — `{"schema": "pomtlb-scenario-v1",
 * "runs": [...]}`  — is byte-identical at any worker count and any
 * cache/journal/execution mix.
 *
 * @param specs   The campaign, in emission order.
 * @param options Cache/journal/worker knobs.
 * @param stats   Optional out-param for the campaign accounting.
 * @param emit    Optional per-scenario callback (request order).
 */
JsonValue runScenarioCampaign(
    const std::vector<ScenarioSpec> &specs,
    const ScenarioCampaignOptions &options,
    SweepServiceStats *stats = nullptr,
    const std::function<void(const ScenarioJobReport &,
                             const JsonValue &)> &emit = {});

} // namespace pomtlb

#endif // POMTLB_SIM_SCENARIO_HH

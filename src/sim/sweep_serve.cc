#include "sim/sweep_serve.hh"

#include <filesystem>
#include <istream>
#include <ostream>
#include <vector>

#include "sim/experiment.hh"
#include "sim/scenario.hh"
#include "sim/scheme_registry.hh"
#include "trace/profile.hh"

namespace pomtlb
{

namespace
{

/** Protocol violation: reported as an `error` event, loop continues. */
struct ServeError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

std::string
stringField(const JsonValue &request, const std::string &field)
{
    if (!request.has(field) || !request.at(field).isString())
        throw ServeError("request needs string field '" + field +
                         "'");
    return request.at(field).asString();
}

/**
 * An axis field: a JSON array of names, the string "all", or absent
 * (= all). Returns the resolved name list.
 */
std::vector<std::string>
axisField(const JsonValue &request, const std::string &field,
          const std::vector<std::string> &all_names)
{
    if (!request.has(field))
        return all_names;
    const JsonValue &value = request.at(field);
    if (value.isString()) {
        if (value.asString() == "all")
            return all_names;
        return {value.asString()};
    }
    if (!value.isArray())
        throw ServeError("field '" + field +
                         "' must be an array of names or \"all\"");
    std::vector<std::string> names;
    for (const JsonValue &element : value.elements()) {
        if (!element.isString())
            throw ServeError("field '" + field +
                             "' must contain only strings");
        names.push_back(element.asString());
    }
    if (names.empty())
        throw ServeError("field '" + field + "' must not be empty");
    return names;
}

/** Apply the optional config-override fields of a sweep request. */
ExperimentConfig
configFromRequest(const JsonValue &request)
{
    ExperimentConfig config = defaultExperimentConfig();
    if (request.has("cores")) {
        config.system.numCores = static_cast<unsigned>(
            request.at("cores").asUint());
    }
    if (request.has("refs_per_core")) {
        config.engine.refsPerCore =
            request.at("refs_per_core").asUint();
    }
    if (request.has("warmup_refs_per_core")) {
        config.engine.warmupRefsPerCore =
            request.at("warmup_refs_per_core").asUint();
    }
    if (request.has("seed"))
        config.engine.seed = request.at("seed").asUint();
    if (request.has("pom_capacity_mb")) {
        config.system.pomTlb.capacityBytes =
            request.at("pom_capacity_mb").asUint() << 20;
    }
    if (request.has("mode")) {
        const std::string &mode = request.at("mode").asString();
        if (mode == "native")
            config.system.mode = ExecMode::Native;
        else if (mode == "virtualized")
            config.system.mode = ExecMode::Virtualized;
        else
            throw ServeError("unknown mode '" + mode +
                             "' (native or virtualized)");
    }
    return config;
}

} // namespace

ServeSession::ServeSession(std::istream &in, std::ostream &out,
                           ServeOptions serve_options)
    : input(in), output(out), serveOptions(std::move(serve_options))
{
}

void
ServeSession::emitEvent(JsonValue event)
{
    JsonValue line = JsonValue::object();
    line.set("schema", kSweepServeSchemaV1);
    for (const auto &[key, value] : event.members())
        line.set(key, value);
    line.write(output, 0);
    output << "\n";
    output.flush();
}

JsonValue
ServeSession::statsJson() const
{
    JsonValue stats = JsonValue::object();
    stats.set("jobs", std::uint64_t(campaignStats.jobs));
    stats.set("executed", std::uint64_t(campaignStats.executed));
    stats.set("cache_hits",
              std::uint64_t(campaignStats.cacheHits));
    stats.set("journal_hits",
              std::uint64_t(campaignStats.journalHits));
    stats.set("deduplicated",
              std::uint64_t(campaignStats.deduplicated));
    stats.set("quarantined",
              std::uint64_t(campaignStats.quarantined));
    return stats;
}

void
ServeSession::handleSweep(const JsonValue &request)
{
    const bool single = stringField(request, "op") == "run";

    std::vector<std::string> benchmarks;
    std::vector<std::string> schemes;
    if (single) {
        benchmarks = {stringField(request, "benchmark")};
        schemes = {stringField(request, "scheme")};
    } else {
        benchmarks = axisField(request, "benchmarks",
                               ProfileRegistry::names());
        schemes = axisField(request, "schemes",
                            SchemeRegistry::global().names());
    }

    for (const std::string &name : benchmarks) {
        if (ProfileRegistry::find(name) == nullptr)
            throw ServeError("unknown benchmark '" + name + "'");
    }
    for (std::string &name : schemes) {
        const SchemeRegistry::Info *info =
            SchemeRegistry::global().find(name);
        if (info == nullptr)
            throw ServeError("unknown scheme '" + name + "'");
        name = info->name;
    }

    const ExperimentConfig config = configFromRequest(request);
    const bool component_stats =
        request.has("component_stats") &&
        request.at("component_stats").asBool();

    std::vector<ExperimentRequest> requests;
    for (const std::string &benchmark : benchmarks) {
        for (const std::string &scheme : schemes) {
            requests.push_back(
                ExperimentRequest::of(benchmark, scheme, config)
                    .withComponentStats(component_stats));
        }
    }

    SweepServiceOptions options;
    options.cacheDir = serveOptions.cacheDir;
    options.jobs = serveOptions.jobs;
    if (request.has("jobs")) {
        options.jobs = static_cast<unsigned>(
            request.at("jobs").asUint());
    }
    options.crashAfterAppends = serveOptions.crashAfterAppends;

    std::vector<std::string> hashes;
    for (const ExperimentRequest &job : requests)
        hashes.push_back(jobHash(job));
    const std::string campaign = sweepHash(hashes);
    if (!serveOptions.journalDir.empty()) {
        std::error_code error;
        std::filesystem::create_directories(serveOptions.journalDir,
                                            error);
        options.journalPath =
            (std::filesystem::path(serveOptions.journalDir) /
             (campaign + ".jsonl"))
                .string();
    }

    const std::size_t total = requests.size();
    SweepService service(options);
    service.run(requests, [&](const SweepJobReport &report,
                              const JsonValue &run) {
        JsonValue event = JsonValue::object();
        event.set("event", "job");
        event.set("index", std::uint64_t(report.index));
        event.set("jobs", std::uint64_t(total));
        event.set("key", report.key);
        event.set("job_hash", report.hash);
        event.set("source", jobSourceName(report.source));
        event.set("wall_seconds", report.wallSeconds);
        event.set("run", run);
        emitEvent(std::move(event));
    });
    campaignStats = service.stats();

    JsonValue end = JsonValue::object();
    end.set("event", "sweep-end");
    end.set("sweep_hash", campaign);
    end.set("stats", statsJson());
    emitEvent(std::move(end));
}

void
ServeSession::handleScenario(const JsonValue &request)
{
    if (!request.has("tenants"))
        throw ServeError("scenario request needs field 'tenants'");
    std::vector<std::uint64_t> counts;
    const JsonValue &tenants = request.at("tenants");
    if (tenants.isArray()) {
        for (const JsonValue &element : tenants.elements())
            counts.push_back(element.asUint());
    } else {
        counts.push_back(tenants.asUint());
    }
    if (counts.empty())
        throw ServeError("field 'tenants' must not be empty");

    std::string scheme = request.has("scheme")
                             ? stringField(request, "scheme")
                             : std::string("POM-TLB");
    const SchemeRegistry::Info *info =
        SchemeRegistry::global().find(scheme);
    if (info == nullptr)
        throw ServeError("unknown scheme '" + scheme + "'");
    scheme = info->name;

    std::vector<std::string> benchmarks{"mcf"};
    if (request.has("tenant_benchmarks"))
        benchmarks = axisField(request, "tenant_benchmarks",
                               ProfileRegistry::names());
    for (const std::string &name : benchmarks) {
        if (ProfileRegistry::find(name) == nullptr)
            throw ServeError("unknown benchmark '" + name + "'");
    }

    const ExperimentConfig config = configFromRequest(request);
    auto uintField = [&](const char *field,
                         std::uint64_t fallback) -> std::uint64_t {
        return request.has(field) ? request.at(field).asUint()
                                  : fallback;
    };
    const std::string base_name =
        request.has("name") ? stringField(request, "name")
                            : std::string("consolidation");

    std::vector<ScenarioSpec> specs;
    for (const std::uint64_t count : counts) {
        ScenarioSpec spec;
        spec.name = base_name + "-" + std::to_string(count) + "t";
        spec.scheme = scheme;
        spec.system = config.system;
        spec.engine = config.engine;
        spec.tenantCount = static_cast<unsigned>(count);
        spec.tenantBenchmarks = benchmarks;
        spec.churnIntervalRefs =
            uintField("churn_interval_refs", 0);
        spec.residentPerCore = static_cast<unsigned>(
            uintField("resident_per_core", 4));
        if (request.has("overcommit_factor")) {
            spec.overcommitFactor =
                request.at("overcommit_factor").asNumber();
        }
        spec.migrationPagesPerArrival =
            uintField("migration_pages_per_arrival", 0);
        spec.storm.intervalRefs =
            uintField("storm_interval_refs", 0);
        spec.storm.pagesPerBurst = static_cast<unsigned>(
            uintField("storm_pages_per_burst", 8));
        spec.timeSliceRefs = uintField("time_slice_refs", 0);
        specs.push_back(std::move(spec));
    }

    ScenarioCampaignOptions options;
    options.cacheDir = serveOptions.cacheDir;
    options.jobs = serveOptions.jobs;
    if (request.has("jobs")) {
        options.jobs = static_cast<unsigned>(
            request.at("jobs").asUint());
    }
    options.crashAfterAppends = serveOptions.crashAfterAppends;

    std::vector<std::string> hashes;
    for (const ScenarioSpec &spec : specs)
        hashes.push_back(scenarioHash(spec));
    const std::string campaign = sweepHash(hashes);
    if (!serveOptions.journalDir.empty()) {
        std::error_code error;
        std::filesystem::create_directories(serveOptions.journalDir,
                                            error);
        options.journalPath =
            (std::filesystem::path(serveOptions.journalDir) /
             (campaign + ".jsonl"))
                .string();
    }

    const std::size_t total = specs.size();
    SweepServiceStats stats;
    runScenarioCampaign(
        specs, options, &stats,
        [&](const ScenarioJobReport &report, const JsonValue &run) {
            JsonValue event = JsonValue::object();
            event.set("event", "scenario-job");
            event.set("index", std::uint64_t(report.index));
            event.set("jobs", std::uint64_t(total));
            event.set("name", report.name);
            event.set("scenario_hash", report.hash);
            event.set("source", jobSourceName(report.source));
            event.set("wall_seconds", report.wallSeconds);
            event.set("run", run);
            emitEvent(std::move(event));
        });
    campaignStats = stats;

    JsonValue end = JsonValue::object();
    end.set("event", "scenario-end");
    end.set("campaign_hash", campaign);
    end.set("stats", statsJson());
    emitEvent(std::move(end));
}

void
ServeSession::handleRequest(const JsonValue &request)
{
    if (!request.isObject())
        throw ServeError("request must be a JSON object");
    const std::string op = stringField(request, "op");

    if (op == "ping") {
        JsonValue event = JsonValue::object();
        event.set("event", "pong");
        emitEvent(std::move(event));
    } else if (op == "list") {
        JsonValue event = JsonValue::object();
        event.set("event", "catalog");
        JsonValue benchmarks = JsonValue::array();
        for (const std::string &name : ProfileRegistry::names())
            benchmarks.push(name);
        event.set("benchmarks", std::move(benchmarks));
        JsonValue schemes = JsonValue::array();
        for (const std::string &name :
             SchemeRegistry::global().names())
            schemes.push(name);
        event.set("schemes", std::move(schemes));
        emitEvent(std::move(event));
    } else if (op == "sweep" || op == "run") {
        handleSweep(request);
    } else if (op == "scenario") {
        handleScenario(request);
    } else if (op == "stats") {
        JsonValue event = JsonValue::object();
        event.set("event", "stats");
        event.set("stats", statsJson());
        emitEvent(std::move(event));
    } else if (op == "shutdown") {
        JsonValue event = JsonValue::object();
        event.set("event", "bye");
        emitEvent(std::move(event));
        shuttingDown = true;
    } else {
        throw ServeError("unknown op '" + op + "'");
    }
}

std::size_t
ServeSession::runToCompletion()
{
    JsonValue ready = JsonValue::object();
    ready.set("event", "ready");
    ready.set("jobs", std::uint64_t(serveOptions.jobs));
    ready.set("cache_dir", serveOptions.cacheDir);
    emitEvent(std::move(ready));

    std::size_t handled = 0;
    std::string line;
    while (!shuttingDown && std::getline(input, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        ++handled;
        try {
            handleRequest(JsonValue::parse(line));
        } catch (const std::exception &error) {
            JsonValue event = JsonValue::object();
            event.set("event", "error");
            event.set("message", std::string(error.what()));
            emitEvent(std::move(event));
        }
    }
    return handled;
}

} // namespace pomtlb

/**
 * @file
 * The paper's additive performance model (Section 3.2-3.3, Eqs. 2-5).
 *
 * The paper measures each workload on real hardware (total
 * instructions I, cycles C, L2 TLB misses M, total miss-penalty
 * cycles P) and simulates only the translation path:
 *
 *     C_ideal   = C_total - P_total                           (2)
 *     P_avg     = P_total / M_total                           (3)
 *     C_scheme  = C_ideal + M_total * P_scheme_avg            (4)
 *     IPC       = I_total / C_scheme                          (5)
 *
 * Our measurement substrate is the published Table 2 constants; the
 * useful identity is that the speedup depends only on the measured
 * overhead fraction (ovh = P_total / C_total) and the ratio r of
 * simulated scheme translation cost to baseline translation cost:
 *
 *     improvement = 1 / ((1 - ovh) + ovh * r) - 1
 *
 * which is exactly Eqs. 2-5 with both sides divided by C_total.
 */

#ifndef POMTLB_SIM_PERF_MODEL_HH
#define POMTLB_SIM_PERF_MODEL_HH

#include "common/types.hh"
#include "trace/profile.hh"

namespace pomtlb
{

/** Raw Eq. 2-5 evaluation from absolute measured quantities. */
struct AdditiveModelInput
{
    double totalInstructions = 0.0; // I_total
    double totalCycles = 0.0;       // C_total
    double totalMisses = 0.0;       // M_total
    double totalPenalty = 0.0;      // P_total
};

/** Outputs of the additive model. */
struct AdditiveModelResult
{
    double idealCycles = 0.0;      // Eq. 2
    double baselinePavg = 0.0;     // Eq. 3
    double baselineIpc = 0.0;
    double schemeCycles = 0.0;     // Eq. 4
    double schemeIpc = 0.0;        // Eq. 5
    double improvementPct = 0.0;
};

/** The paper's performance model. */
class PerfModel
{
  public:
    /** Evaluate Eqs. 2-5 with an explicit simulated P_scheme_avg. */
    static AdditiveModelResult evaluate(const AdditiveModelInput &input,
                                        double scheme_p_avg);

    /**
     * Speedup from the overhead-fraction form: @p overhead_pct is the
     * measured translation overhead (% of total cycles, Table 2) and
     * @p cost_ratio is simulated scheme translation cost divided by
     * simulated baseline translation cost.
     */
    static double improvementPct(double overhead_pct,
                                 double cost_ratio);

    /** Convenience: pick the Table 2 overhead for @p mode. */
    static double improvementPct(const BenchmarkProfile &profile,
                                 ExecMode mode, double cost_ratio);
};

} // namespace pomtlb

#endif // POMTLB_SIM_PERF_MODEL_HH

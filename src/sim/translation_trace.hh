/**
 * @file
 * The optional per-event translation trace behind `--trace-out`.
 *
 * A TranslationTracer samples one in every N translations (N from
 * POMTLB_TRACE_SAMPLE, default 64) into a fixed-capacity ring buffer
 * of TranslationEvent records; when the buffer is full the oldest
 * events are overwritten, so a dump always holds the *latest*
 * window. Each record captures the full lifecycle of one translation:
 * which SRAM TLB level (if any) hit, the scheme's probe sequence
 * length, the predictor outcome (first-try service), the final
 * serving point, and the cycle split between the SRAM levels and the
 * scheme. Dumps are JSONL — one compact JSON object per line — so
 * they stream into jq / pandas without a parser step.
 *
 * Tracing is off unless a tracer is attached (Machine::enableTracing);
 * the disabled hot-path cost is one null-pointer test per
 * translation.
 */

#ifndef POMTLB_SIM_TRANSLATION_TRACE_HH
#define POMTLB_SIM_TRANSLATION_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hh"
#include "sim/scheme.hh"
#include "tlb/core_tlbs.hh"

namespace pomtlb
{

/** One sampled translation's full lifecycle. */
struct TranslationEvent
{
    /** Ordinal of this translation among all seen (pre-sampling). */
    std::uint64_t seq = 0;
    /** Core that issued the reference. */
    CoreId core = 0;
    /** Guest-virtual address translated. */
    Addr vaddr = 0;
    /** Page size of the translated page. */
    PageSize size = PageSize::Small4K;
    /** VM the reference ran in. */
    VmId vm = 0;
    /** Guest process id. */
    ProcessId pid = 0;
    /** Absolute cycle the translation began. */
    Cycles start = 0;
    /** Total translation cycles beyond an L1 TLB hit. */
    Cycles cycles = 0;
    /** Cycles spent in the SRAM TLB levels. */
    Cycles sramCycles = 0;
    /** Cycles spent in the scheme (0 when an SRAM level hit). */
    Cycles schemeCycles = 0;
    /** Which private SRAM TLB level hit (Miss = scheme resolved it). */
    TlbLevel tlbLevel = TlbLevel::Miss;
    /** The structure that finally produced the translation. */
    ServicePoint servedBy = ServicePoint::SramL1;
    /** Scheme probes issued (0 when an SRAM level hit). */
    std::uint8_t probes = 0;
    /** Whether the first probe target (predicted path) served it. */
    bool firstTryServed = true;
    /** Whether a full page walk happened. */
    bool walked = false;
};

/** A sampling ring buffer of TranslationEvent records. */
class TranslationTracer
{
  public:
    /**
     * @param capacity        Ring capacity in events (oldest events
     *                        are overwritten once exceeded).
     * @param sample_interval Record one in every N translations;
     *                        0 picks defaultSampleInterval().
     */
    explicit TranslationTracer(std::size_t capacity = 4096,
                               std::uint64_t sample_interval = 0);

    /**
     * Sampling decision for the next translation. Increments the
     * seen-counter and returns true when this translation should be
     * recorded (every sampleInterval()-th one, starting with the
     * first).
     */
    bool
    shouldSample()
    {
        return (seen++ % interval) == 0;
    }

    /** Append one sampled event (overwrites the oldest when full). */
    void record(const TranslationEvent &event);

    /** Ring capacity in events. */
    std::size_t capacity() const { return ring.size(); }
    /** Events currently held (<= capacity). */
    std::size_t size() const;
    /** Translations observed by shouldSample() since reset. */
    std::uint64_t seenCount() const { return seen; }
    /** Events recorded since reset (>= size() once wrapped). */
    std::uint64_t recordedCount() const { return recorded; }
    /** Configured 1-in-N sampling interval. */
    std::uint64_t sampleInterval() const { return interval; }

    /** The held events, oldest first. */
    std::vector<TranslationEvent> events() const;

    /**
     * Write the held events as JSONL (one compact object per line,
     * oldest first). Field names match docs/metrics.md's trace
     * record schema.
     */
    void writeJsonl(std::ostream &os) const;

    /** Drop all events and zero the counters. */
    void reset();

    /** The POMTLB_TRACE_SAMPLE environment knob (default 64). */
    static std::uint64_t defaultSampleInterval();

  private:
    std::vector<TranslationEvent> ring;
    std::size_t head = 0;     ///< Next slot to write.
    std::size_t held = 0;     ///< Valid events in the ring.
    std::uint64_t seen = 0;
    std::uint64_t recorded = 0;
    std::uint64_t interval = 64;
};

} // namespace pomtlb

#endif // POMTLB_SIM_TRANSLATION_TRACE_HH

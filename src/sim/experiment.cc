#include "sim/experiment.hh"

#include <cstdlib>

#include "common/log.hh"
#include "sim/machine.hh"
#include "sim/perf_model.hh"

namespace pomtlb
{

SchemeRunSummary
runScheme(const BenchmarkProfile &profile, SchemeKind scheme,
          const ExperimentConfig &config)
{
    Machine machine(config.system, scheme);
    SimulationEngine engine(machine, profile, config.engine);

    SchemeRunSummary summary;
    summary.benchmark = profile.name;
    summary.scheme = scheme;
    summary.mode = config.system.mode;
    summary.run = engine.run();

    summary.translationCycles = summary.run.totalTranslationCycles();
    summary.avgPenaltyPerMiss = summary.run.avgPenaltyPerMiss();
    summary.walkFraction = summary.run.walkFraction();
    summary.l3DataHitRate =
        machine.hierarchy().l3d().hitRate(LineKind::Data);

    if (PomTlbScheme *pom = machine.pomTlbScheme()) {
        summary.pomL2CacheServiceRate = pom->l2CacheServiceRate();
        summary.pomL3CacheServiceRate = pom->l3CacheServiceRate();
        summary.pomDramServiceRate = pom->pomDramServiceRate();
        summary.sizePredictorAccuracy = pom->sizePredictorAccuracy();
        summary.bypassPredictorAccuracy =
            pom->bypassPredictorAccuracy();
        summary.dieStackedRowBufferHitRate =
            machine.pomTlbDevice()->rowBufferHitRate();
    }
    return summary;
}

namespace
{

/** Translation-cost ratio of a scheme run vs. the baseline run. */
double
costRatio(const SchemeRunSummary &scheme,
          const SchemeRunSummary &baseline)
{
    if (baseline.translationCycles == 0)
        return 1.0;
    return static_cast<double>(scheme.translationCycles) /
           static_cast<double>(baseline.translationCycles);
}

} // namespace

BenchmarkComparison
compareSchemes(const BenchmarkProfile &profile,
               const ExperimentConfig &config)
{
    BenchmarkComparison comparison;
    comparison.benchmark = profile.name;

    comparison.baseline =
        runScheme(profile, SchemeKind::NestedWalk, config);
    comparison.pomTlb = runScheme(profile, SchemeKind::PomTlb, config);
    comparison.sharedL2 =
        runScheme(profile, SchemeKind::SharedL2, config);
    comparison.tsb = runScheme(profile, SchemeKind::Tsb, config);

    comparison.pomCostRatio =
        costRatio(comparison.pomTlb, comparison.baseline);
    comparison.sharedCostRatio =
        costRatio(comparison.sharedL2, comparison.baseline);
    comparison.tsbCostRatio =
        costRatio(comparison.tsb, comparison.baseline);

    const ExecMode mode = config.system.mode;
    comparison.pomImprovementPct = PerfModel::improvementPct(
        profile, mode, comparison.pomCostRatio);
    comparison.sharedImprovementPct = PerfModel::improvementPct(
        profile, mode, comparison.sharedCostRatio);
    comparison.tsbImprovementPct = PerfModel::improvementPct(
        profile, mode, comparison.tsbCostRatio);
    return comparison;
}

double
pomImprovementOnly(const BenchmarkProfile &profile,
                   const ExperimentConfig &config)
{
    const SchemeRunSummary baseline =
        runScheme(profile, SchemeKind::NestedWalk, config);
    const SchemeRunSummary pom =
        runScheme(profile, SchemeKind::PomTlb, config);
    return PerfModel::improvementPct(profile, config.system.mode,
                                     costRatio(pom, baseline));
}

ExperimentConfig
defaultExperimentConfig()
{
    ExperimentConfig config;
    // POMTLB_QUICK trims run lengths for smoke testing; the default
    // lengths are what the benches use to regenerate the figures.
    if (std::getenv("POMTLB_QUICK") != nullptr) {
        config.engine.refsPerCore = 20000;
        config.engine.warmupRefsPerCore = 5000;
    }
    return config;
}

} // namespace pomtlb

#include "sim/experiment.hh"

#include <cstdlib>

#include "common/log.hh"
#include "sim/machine.hh"
#include "sim/perf_model.hh"
#include "sim/sweep.hh"

namespace pomtlb
{

SchemeRunSummary
runScheme(const BenchmarkProfile &profile, const std::string &scheme,
          const ExperimentConfig &config)
{
    return runExperiment(
               ExperimentRequest::of(profile.name, scheme, config))
        .summary;
}

SchemeRunSummary
runScheme(const BenchmarkProfile &profile, SchemeKind scheme,
          const ExperimentConfig &config)
{
    return runScheme(profile, std::string(schemeKindName(scheme)),
                     config);
}

namespace
{

/** Translation-cost ratio of a scheme run vs. the baseline run. */
double
costRatio(const SchemeRunSummary &scheme,
          const SchemeRunSummary &baseline)
{
    if (baseline.translationCycles == 0)
        return 1.0;
    return static_cast<double>(scheme.translationCycles) /
           static_cast<double>(baseline.translationCycles);
}

} // namespace

const SchemeRunSummary &
BenchmarkComparison::summary(const std::string &scheme) const
{
    for (const auto &entry : runs)
        if (entry.first == scheme)
            return entry.second;
    fatal("comparison for '", benchmark, "' has no ", scheme,
          " run");
}

const SchemeRunSummary &
BenchmarkComparison::summary(SchemeKind kind) const
{
    return summary(std::string(schemeKindName(kind)));
}

const SchemeDelta &
BenchmarkComparison::delta(const std::string &scheme) const
{
    const auto it = deltas.find(scheme);
    if (it == deltas.end()) {
        fatal("comparison for '", benchmark, "' has no ", scheme,
              " delta");
    }
    return it->second;
}

const SchemeDelta &
BenchmarkComparison::delta(SchemeKind kind) const
{
    return delta(std::string(schemeKindName(kind)));
}

BenchmarkComparison
compareSchemes(const BenchmarkProfile &profile,
               const ExperimentConfig &config)
{
    const std::vector<ExperimentResult> results =
        SweepRunner(config.sweepJobs)
            .run(SweepSpec()
                     .withBase(config)
                     .withBenchmarks({profile.name})
                     .withAllSchemes());

    BenchmarkComparison comparison;
    comparison.benchmark = profile.name;
    for (const ExperimentResult &result : results)
        comparison.runs.emplace_back(result.request.scheme,
                                     result.summary);

    const SchemeRunSummary &baseline = comparison.baseline();
    const ExecMode mode = config.system.mode;
    for (const auto &[scheme, summary] : comparison.runs) {
        SchemeDelta delta;
        delta.costRatio = costRatio(summary, baseline);
        delta.improvementPct = PerfModel::improvementPct(
            profile, mode, delta.costRatio);
        comparison.deltas.emplace(scheme, delta);
    }
    return comparison;
}

double
pomImprovementOnly(const BenchmarkProfile &profile,
                   const ExperimentConfig &config)
{
    return pomImprovementOnly(profile, config, config.system);
}

double
pomImprovementOnly(const BenchmarkProfile &profile,
                   const ExperimentConfig &config,
                   const SystemConfig &pom_system)
{
    ExperimentConfig pom_config = config;
    pom_config.system = pom_system;

    const std::vector<ExperimentResult> results =
        SweepRunner(config.sweepJobs)
            .run({ExperimentRequest::of(profile.name,
                                        SchemeKind::NestedWalk,
                                        config),
                  ExperimentRequest::of(profile.name,
                                        SchemeKind::PomTlb,
                                        pom_config)});

    return PerfModel::improvementPct(
        profile, config.system.mode,
        costRatio(results[1].summary, results[0].summary));
}

ExperimentConfig
defaultExperimentConfig()
{
    ExperimentConfig config;
    // POMTLB_QUICK trims run lengths for smoke testing; the default
    // lengths are what the benches use to regenerate the figures.
    if (std::getenv("POMTLB_QUICK") != nullptr) {
        config.engine.refsPerCore = 20000;
        config.engine.warmupRefsPerCore = 5000;
    }
    // POMTLB_SWEEP_JOBS presets the fan-out of the multi-run
    // helpers (CI throttles with =1; workstations raise it).
    if (const char *jobs = std::getenv("POMTLB_SWEEP_JOBS")) {
        const long value = std::strtol(jobs, nullptr, 10);
        if (value > 0)
            config.sweepJobs = static_cast<unsigned>(value);
    }
    return config;
}

} // namespace pomtlb

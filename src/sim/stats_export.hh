/**
 * @file
 * The versioned `pomtlb-stats-v1` statistics document.
 *
 * buildStatsDocument() snapshots a finished run — machine identity,
 * run totals, the per-service-point cycle breakdown (the paper's
 * Figure 8 decomposition), and the full component statistics tree —
 * into one JSON object. The schema is documented field-by-field in
 * docs/metrics.md; consumers (scripts/plot_results.py, notebooks)
 * should check the `schema` member before reading anything else.
 *
 * Invariants the document guarantees (asserted in tests):
 *
 *  - totals.translation_cycles == totals.sram_cycles +
 *    totals.scheme_cycles, exactly;
 *  - the cycle_breakdown values sum exactly to
 *    totals.translation_cycles;
 *  - every leaf in `components` matches a name documented in
 *    docs/metrics.md (after `.N` core-index normalisation).
 */

#ifndef POMTLB_SIM_STATS_EXPORT_HH
#define POMTLB_SIM_STATS_EXPORT_HH

#include <string>

#include "common/json.hh"

namespace pomtlb
{

class Machine;
struct RunResult;

/** Schema identifier written into every stats document. */
inline constexpr const char *kStatsSchemaV1 = "pomtlb-stats-v1";

/**
 * Build the `pomtlb-stats-v1` document for a finished run.
 *
 * @param machine   The machine the run executed on (statistics are
 *                  read from its registry and components as-is, so
 *                  call this before any resetStats()). Non-const only
 *                  because component accessors are non-const; nothing
 *                  is modified.
 * @param result    The engine's RunResult for the measured phase.
 * @param benchmark Benchmark name recorded in the document.
 * @return The document as a JsonValue object.
 */
JsonValue buildStatsDocument(Machine &machine, const RunResult &result,
                             const std::string &benchmark);

} // namespace pomtlb

#endif // POMTLB_SIM_STATS_EXPORT_HH

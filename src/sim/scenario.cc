#include "sim/scenario.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/bitutil.hh"
#include "common/content_hash.hh"
#include "common/hash_set.hh"
#include "common/log.hh"
#include "sim/clock_heap.hh"
#include "sim/machine.hh"
#include "sim/scheme_registry.hh"
#include "sim/shard.hh"
#include "sim/stats_export.hh"
#include "tlb/core_tlbs.hh"
#include "trace/profile.hh"
#include "trace/tracepack.hh"

namespace pomtlb
{

// ---------------------------------------------------------------
// Spec resolution
// ---------------------------------------------------------------

namespace
{

/** Canonical registry name of @p scheme (raw name when unknown). */
std::string
canonicalScheme(const std::string &scheme)
{
    const SchemeRegistry::Info *info =
        SchemeRegistry::global().find(scheme);
    return info ? info->name : scheme;
}

/**
 * One stream-order first-touch candidate from the parallel
 * pre-population scan (the scenario twin of engine.cc's PrepopPage).
 */
struct PrepopPage
{
    std::uint64_t key;
    Addr vaddr;
    PageSize pageSize;
};

} // namespace

std::vector<ResolvedTenant>
ScenarioSpec::resolvedTenants() const
{
    const std::uint64_t total =
        engine.warmupRefsPerCore + engine.refsPerCore;
    const unsigned cores = system.numCores;
    simAssert(total > 0, "scenario run length is zero");

    std::vector<TenantSpec> expanded;
    if (tenantCount > 0) {
        // Generator mode: expand the churn model into an explicit
        // tenant list, so it resolves (and hashes) exactly like one.
        const std::vector<std::string> cycle =
            tenantBenchmarks.empty()
                ? std::vector<std::string>{"mcf"}
                : tenantBenchmarks;
        const unsigned n = tenantCount;
        unsigned vcpus = 1;
        if (n < cores) {
            simAssert(cores % n == 0,
                      "tenant count must divide the core count when "
                      "tenants span multiple cores");
            vcpus = cores / n;
        }
        expanded.reserve(n);
        for (unsigned t = 0; t < n; ++t) {
            TenantSpec tenant;
            tenant.name = "t" + std::to_string(t);
            tenant.benchmark = cycle[t % cycle.size()];
            tenant.vcpus = vcpus;
            expanded.push_back(std::move(tenant));
        }
        if (vcpus == 1 && n > cores) {
            // Churn: tenant t homes on core t % cores (the stream
            // placement rule), so schedule each core's queue
            // independently — the first `resident` tenants start
            // resident, and every `interval` references the oldest
            // departs as the next one arrives.
            const unsigned resident =
                residentPerCore ? residentPerCore : 1;
            for (unsigned core = 0; core < cores; ++core) {
                std::vector<unsigned> homed;
                for (unsigned t = core; t < n; t += cores)
                    homed.push_back(t);
                const std::size_t k = homed.size();
                const std::size_t r =
                    std::min<std::size_t>(resident, k);
                if (k <= r)
                    continue; // everyone fits: no churn on this core
                const std::uint64_t slots = k - r + 1;
                const std::uint64_t interval =
                    churnIntervalRefs ? churnIntervalRefs
                                      : total / slots;
                simAssert(interval > 0,
                          "churn interval resolves to zero "
                          "(run too short for this tenant count)");
                for (std::size_t j = 0; j < k; ++j) {
                    TenantSpec &tenant = expanded[homed[j]];
                    tenant.arrivalRefs =
                        j < r ? 0 : (j - r + 1) * interval;
                    tenant.departureRefs =
                        (j + r < k) ? (j + 1) * interval : 0;
                    simAssert(tenant.arrivalRefs < total,
                              "churn interval too large: a tenant "
                              "arrives after the run ends");
                }
            }
        }
    } else {
        expanded = tenants;
    }
    simAssert(!expanded.empty(), "scenario has no tenants");

    std::vector<ResolvedTenant> resolved;
    resolved.reserve(expanded.size());
    ProcessId next_pid = engine.pidBase;
    for (std::size_t i = 0; i < expanded.size(); ++i) {
        const TenantSpec &t = expanded[i];
        const BenchmarkProfile &profile =
            ProfileRegistry::byName(t.benchmark);
        ResolvedTenant out;
        out.name =
            t.name.empty() ? "t" + std::to_string(i) : t.name;
        out.benchmark = profile.name;
        out.vcpus = std::max(1u, t.vcpus);
        out.vm = t.vm != 0 ? t.vm : static_cast<VmId>(1 + i);
        out.multithreaded = profile.multithreaded;
        if (t.pid != 0) {
            out.pidBase = t.pid;
        } else {
            out.pidBase = next_pid;
            next_pid = static_cast<ProcessId>(
                next_pid +
                (profile.multithreaded ? 1 : out.vcpus));
        }
        simAssert(t.arrivalRefs < total,
                  "tenant arrives at or after the run end");
        out.arrivalRefs = t.arrivalRefs;
        out.departureRefs =
            (t.departureRefs == 0 || t.departureRefs > total)
                ? total
                : t.departureRefs;
        simAssert(out.departureRefs > out.arrivalRefs,
                  "tenant departs before it arrives");
        const Addr nominal = t.footprintBytes
                                 ? t.footprintBytes
                                 : profile.footprintBytes;
        out.footprintBytes = nominal;
        if (overcommitFactor != 1.0) {
            simAssert(overcommitFactor > 0.0,
                      "overcommit factor must be positive");
            out.footprintBytes = std::max<Addr>(
                Addr{1} << 12,
                static_cast<Addr>(static_cast<double>(nominal) /
                                  overcommitFactor));
        }
        out.tracePack = t.tracePack;
        out.traceStreamBase = t.traceStream;
        resolved.push_back(std::move(out));
    }

    // The scenario-wide pack (pomtlb scenario --trace-in) backs
    // every tenant that has no pack of its own, one stream per vCPU
    // in resolved order — the layout recordPack() writes.
    if (!tracePack.empty()) {
        std::uint32_t stream_base = 0;
        for (ResolvedTenant &t : resolved) {
            if (t.tracePack.empty()) {
                t.tracePack = tracePack;
                t.traceStreamBase = stream_base;
            }
            stream_base += t.vcpus;
        }
    }
    return resolved;
}

// ---------------------------------------------------------------
// ScenarioEngine: compilation
// ---------------------------------------------------------------

ScenarioEngine::ScenarioEngine(Machine &machine_ref,
                               const ScenarioSpec &scenario)
    : machine(machine_ref), spec(scenario),
      engineConfig(scenario.engine)
{
    simAssert(machine.numCores() == spec.system.numCores,
              "machine geometry does not match the scenario's "
              "system config");
    totalPerCore =
        engineConfig.warmupRefsPerCore + engineConfig.refsPerCore;
    tenants = spec.resolvedTenants();
    if (engineConfig.runThreads > 0)
        pool = std::make_unique<ShardPool>(engineConfig.runThreads);
    buildStreams();
    buildSchedule();
    buildRegistry();
}

ScenarioEngine::~ScenarioEngine() = default;

void
ScenarioEngine::buildStreams()
{
    const unsigned cores = machine.numCores();
    const std::uint64_t seed =
        engineConfig.seed ^ machine.config().seed;
    // Tenants sharing a pack share one mmap-ed reader.
    std::map<std::string, std::shared_ptr<TracePackReader>> packs;
    std::uint32_t stream_id = 0;
    for (unsigned t = 0; t < tenants.size(); ++t) {
        const ResolvedTenant &tenant = tenants[t];
        // The stream generates against the tenant's *effective*
        // footprint, so overcommit shrinks the touched page pool —
        // the resident working set — rather than slowing the clock.
        BenchmarkProfile profile =
            ProfileRegistry::byName(tenant.benchmark);
        profile.footprintBytes = tenant.footprintBytes;
        std::shared_ptr<TracePackReader> pack;
        if (!tenant.tracePack.empty()) {
            auto &slot = packs[tenant.tracePack];
            if (!slot) {
                slot = std::make_shared<TracePackReader>(
                    tenant.tracePack);
                // Sharded pre-population reads shared packs from
                // several workers at once; verify every chunk up
                // front so the lazy per-chunk verification cache
                // never races (trace/tracepack.hh).
                if (pool)
                    slot->verifyAllChunks();
            }
            pack = slot;
        }
        for (unsigned v = 0; v < tenant.vcpus; ++v, ++stream_id) {
            TenantStream stream;
            if (pack)
                stream.source = std::make_unique<PackStreamSource>(
                    pack, tenant.traceStreamBase + v);
            else
                stream.source = std::make_unique<GeneratorSource>(
                    profile, CoreId(stream_id), seed);
            stream.tenant = t;
            stream.homeCore = stream_id % cores;
            stream.vm = tenant.vm;
            stream.pid =
                tenant.multithreaded
                    ? tenant.pidBase
                    : static_cast<ProcessId>(tenant.pidBase + v);
            streams.add(std::move(stream));
        }
    }
}

void
ScenarioEngine::buildSchedule()
{
    const unsigned cores = machine.numCores();
    const std::uint64_t quantum =
        spec.timeSliceRefs ? spec.timeSliceRefs : 2000;

    std::vector<std::vector<std::uint32_t>> homed(cores);
    for (std::uint32_t s = 0; s < streams.size(); ++s)
        homed[streams.at(s).homeCore].push_back(s);

    schedule.assign(cores, {});
    for (unsigned core = 0; core < cores; ++core) {
        simAssert(!homed[core].empty(),
                  "scenario leaves a core with no tenant streams");

        // Segment the core's timeline at every arrival/departure.
        std::vector<std::uint64_t> bounds{0, totalPerCore};
        for (const std::uint32_t s : homed[core]) {
            const ResolvedTenant &t =
                tenants[streams.at(s).tenant];
            if (t.arrivalRefs > 0 && t.arrivalRefs < totalPerCore)
                bounds.push_back(t.arrivalRefs);
            if (t.departureRefs < totalPerCore)
                bounds.push_back(t.departureRefs);
        }
        std::sort(bounds.begin(), bounds.end());
        bounds.erase(std::unique(bounds.begin(), bounds.end()),
                     bounds.end());

        std::vector<Slice> plan;
        const auto append = [&plan](std::uint32_t stream,
                                    std::uint64_t length) {
            if (!plan.empty() && plan.back().stream == stream) {
                plan.back().length += length;
                return;
            }
            Slice slice;
            slice.stream = stream;
            slice.length = length;
            plan.push_back(slice);
        };

        // Round-robin within each segment; the rotation cursor
        // carries across segments so no stream is systematically
        // favoured at segment boundaries.
        std::size_t rotation = 0;
        for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
            const std::uint64_t begin = bounds[b];
            const std::uint64_t end = bounds[b + 1];
            std::vector<std::uint32_t> active;
            for (const std::uint32_t s : homed[core]) {
                const ResolvedTenant &t =
                    tenants[streams.at(s).tenant];
                if (t.arrivalRefs <= begin &&
                    t.departureRefs >= end) {
                    active.push_back(s);
                }
            }
            simAssert(!active.empty(),
                      "scenario schedule leaves a core idle (no "
                      "resident tenant in a segment)");
            if (active.size() == 1) {
                append(active[0], end - begin);
                continue;
            }
            // Cap the quantum to an equal share of the segment so
            // every resident stream runs even in segments shorter
            // than one full rotation.
            const std::uint64_t fair = std::max<std::uint64_t>(
                1, (end - begin) / active.size());
            const std::uint64_t take_max = std::min(quantum, fair);
            std::uint64_t remaining = end - begin;
            std::size_t idx = rotation % active.size();
            while (remaining > 0) {
                const std::uint64_t take =
                    std::min(take_max, remaining);
                append(active[idx], take);
                remaining -= take;
                idx = (idx + 1) % active.size();
            }
            rotation = idx;
        }

        // Mark lifecycle boundaries and charge each stream's total.
        std::vector<char> seen(streams.size(), 0);
        for (Slice &slice : plan) {
            if (!seen[slice.stream]) {
                seen[slice.stream] = 1;
                slice.firstOfStream = true;
            }
            streams.at(slice.stream).totalRefs += slice.length;
        }
        std::fill(seen.begin(), seen.end(), 0);
        for (auto it = plan.rbegin(); it != plan.rend(); ++it) {
            if (!seen[it->stream]) {
                seen[it->stream] = 1;
                it->lastOfStream = true;
            }
        }
        schedule[core] = std::move(plan);
    }
}

void
ScenarioEngine::buildRegistry()
{
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const ResolvedTenant &tenant = tenants[i];
        runtimes.emplace_back(tenant.name);
        TenantRuntime &rt = runtimes.back();
        rt.arrivalDone = tenant.arrivalRefs == 0;
        rt.departsMidRun = tenant.departureRefs < totalPerCore;

        StatGroup &group = rt.group;
        group.addDerived("refs", [&rt] {
            return static_cast<double>(rt.refs);
        });
        group.addDerived("l1_tlb_hits", [&rt] {
            return static_cast<double>(rt.l1Hits);
        });
        group.addDerived("l2_tlb_hits", [&rt] {
            return static_cast<double>(rt.l2Hits);
        });
        group.addDerived("last_level_tlb_misses", [&rt] {
            return static_cast<double>(rt.misses);
        });
        group.addDerived("translation_cycles", [&rt] {
            return static_cast<double>(rt.translationCycles);
        });
        group.addDerived("page_walks", [&rt] {
            return static_cast<double>(rt.pageWalks);
        });
        group.addDerived("shootdowns", [&rt] {
            return static_cast<double>(rt.shootdowns);
        });
        group.addDerived("migrations", [&rt] {
            return static_cast<double>(rt.migrations);
        });
        group.addDerived("l1_hit_ratio", [&rt] {
            return rt.refs ? static_cast<double>(rt.l1Hits) /
                                 static_cast<double>(rt.refs)
                           : 0.0;
        });
        group.addDerived("l2_hit_ratio", [&rt] {
            return rt.refs ? static_cast<double>(rt.l2Hits) /
                                 static_cast<double>(rt.refs)
                           : 0.0;
        });
        group.addDerived("p50_translation_cycles", [&rt] {
            return static_cast<double>(
                rt.latency.percentileUpperBound(50.0));
        });
        group.addDerived("p95_translation_cycles", [&rt] {
            return static_cast<double>(
                rt.latency.percentileUpperBound(95.0));
        });
        group.addDerived("p99_translation_cycles", [&rt] {
            return static_cast<double>(
                rt.latency.percentileUpperBound(99.0));
        });
        group.addHistogram("translation_cycle_histogram",
                           rt.latency);
        tenantsGroup.addChild(group);
    }
    for (std::uint32_t s = 0; s < streams.size(); ++s)
        ++runtimes[streams.at(s).tenant].activeStreams;
    scenarioRegistry.add(tenantsGroup);
}

// ---------------------------------------------------------------
// ScenarioEngine: execution
// ---------------------------------------------------------------

void
ScenarioEngine::recordPack(const std::string &path)
{
    // One pack stream per compiled tenant stream, in stream order
    // (= one per vCPU in resolved-tenant order) — the layout
    // ScenarioSpec::tracePack consumes on replay.
    std::vector<std::string> names;
    names.reserve(streams.size());
    std::vector<unsigned> vcpu_seen(tenants.size(), 0);
    for (std::size_t s = 0; s < streams.size(); ++s) {
        const unsigned t = streams.at(s).tenant;
        names.push_back(tenants[t].name + "/" +
                        std::to_string(vcpu_seen[t]++));
    }

    TracePackWriter writer(path, std::move(names));
    std::vector<TraceRecord> block(static_cast<std::size_t>(
        TenantStreamSet::streamBlockRecords));
    for (std::size_t s = 0; s < streams.size(); ++s) {
        TenantStream &stream = streams.at(s);
        stream.source->rewind();
        std::uint64_t remaining = stream.totalRefs;
        while (remaining > 0) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(remaining, block.size()));
            const std::size_t got =
                stream.source->fill(block.data(), want);
            if (got == 0)
                throw TraceError(
                    "cannot record trace pack '" + path + "': " +
                    stream.source->describe() +
                    " ran out of records");
            writer.append(static_cast<std::uint32_t>(s),
                          block.data(), got);
            remaining -= got;
        }
        stream.source->rewind();
    }
    writer.close();
}

void
ScenarioEngine::prepopulate()
{
    captured = streams.captureEligible();
    if (pool) {
        prepopulateSharded();
        return;
    }
    MemoryMap &map = machine.memoryMap();
    U64Set seen(std::size_t{1} << 16);
    std::vector<TraceRecord> chunk;
    if (!captured) {
        chunk.resize(static_cast<std::size_t>(
            TenantStreamSet::streamBlockRecords));
    }

    for (std::size_t s = 0; s < streams.size(); ++s) {
        TenantStream &stream = streams.at(s);
        const std::uint64_t per_stream = stream.totalRefs;
        // Replay exactly the records the timed run will issue.
        TraceSource &dry = *stream.source;
        dry.rewind();
        const VmId vm = stream.vm;
        const ProcessId pid = stream.pid;
        // Dedup key covers (page, pid, vm): the same page may need
        // separate entries per process and per VM.
        const std::uint64_t space_key =
            mix64((static_cast<std::uint64_t>(pid) << 16) | vm);

        if (captured)
            stream.replay.resize(per_stream);

        std::uint64_t done = 0;
        std::uint64_t last_key = ~std::uint64_t{0};
        while (done < per_stream) {
            TraceRecord *block;
            std::size_t want;
            if (captured) {
                block = stream.replay.data() + done;
                want = static_cast<std::size_t>(per_stream - done);
            } else {
                block = chunk.data();
                want = static_cast<std::size_t>(
                    std::min<std::uint64_t>(chunk.size(),
                                            per_stream - done));
            }
            const std::size_t got = dry.fill(block, want);
            simAssert(got == want, "trace source exhausted during "
                                   "steady-state pre-population");
            for (std::size_t i = 0; i < got; ++i) {
                const TraceRecord &record = block[i];
                const Addr page =
                    pageBase(record.vaddr, record.pageSize);
                const std::uint64_t key = mix64(page) ^ space_key;
                // Page-local runs dominate the streams: skip the set
                // probe when the key repeats back-to-back.
                if (key == last_key)
                    continue;
                last_key = key;
                if (!seen.insert(key))
                    continue;
                const TranslationInfo info = map.ensureMapped(
                    vm, pid, record.vaddr, record.pageSize);
                machine.scheme().prewarm(
                    stream.homeCore, record.vaddr, record.pageSize,
                    vm, pid,
                    info.hpa >> pageShift(record.pageSize));
            }
            done += got;
        }
        // Leave the source rewound whether or not the timed run will
        // replay the capture instead of re-reading it.
        dry.rewind();
    }
}

void
ScenarioEngine::prepopulateSharded()
{
    // Stage 1 (parallel, order-free): each worker enumerates one
    // tenant stream — capturing it for the timed run's replay when
    // captures are eligible — and emits the stream's first-touch
    // pages in stream order. Streams' sources, captures, and
    // candidate lists are disjoint; shared pack readers are
    // pre-verified in buildStreams(), so their reads are const.
    std::vector<std::vector<PrepopPage>> first_touch(streams.size());
    pool->forEach(streams.size(), [&](std::size_t s) {
        TenantStream &stream = streams.at(s);
        const std::uint64_t per_stream = stream.totalRefs;
        TraceSource &dry = *stream.source;
        dry.rewind();
        const VmId vm = stream.vm;
        const ProcessId pid = stream.pid;
        const std::uint64_t space_key =
            mix64((static_cast<std::uint64_t>(pid) << 16) | vm);
        std::vector<PrepopPage> &pages = first_touch[s];
        U64Set stream_seen(std::size_t{1} << 14);
        std::vector<TraceRecord> chunk;
        if (captured)
            stream.replay.resize(per_stream);
        else
            chunk.resize(static_cast<std::size_t>(
                TenantStreamSet::streamBlockRecords));

        std::uint64_t done = 0;
        std::uint64_t last_key = ~std::uint64_t{0};
        while (done < per_stream) {
            TraceRecord *block;
            std::size_t want;
            if (captured) {
                block = stream.replay.data() + done;
                want = static_cast<std::size_t>(per_stream - done);
            } else {
                block = chunk.data();
                want = static_cast<std::size_t>(
                    std::min<std::uint64_t>(chunk.size(),
                                            per_stream - done));
            }
            const std::size_t got = dry.fill(block, want);
            simAssert(got == want, "trace source exhausted during "
                                   "steady-state pre-population");
            for (std::size_t i = 0; i < got; ++i) {
                const TraceRecord &record = block[i];
                const Addr page =
                    pageBase(record.vaddr, record.pageSize);
                const std::uint64_t key = mix64(page) ^ space_key;
                if (key == last_key)
                    continue;
                last_key = key;
                if (stream_seen.insert(key))
                    pages.push_back(
                        {key, record.vaddr, record.pageSize});
            }
            done += got;
        }
        dry.rewind();
    });

    // Stage 2 (serial, deterministic): install the globally novel
    // pages in stream order. The serial prepopulate() walks streams
    // sequentially against one global seen-set; filtering each
    // stream's ordered first-touch list through the same global set
    // reproduces its ensureMapped()/prewarm() call sequence exactly,
    // so page tables, frame-allocation order, and scheme stores come
    // out bit-identical.
    MemoryMap &map = machine.memoryMap();
    U64Set seen(std::size_t{1} << 16);
    for (std::size_t s = 0; s < streams.size(); ++s) {
        TenantStream &stream = streams.at(s);
        const VmId vm = stream.vm;
        const ProcessId pid = stream.pid;
        for (const PrepopPage &page : first_touch[s]) {
            if (!seen.insert(page.key))
                continue;
            const TranslationInfo info = map.ensureMapped(
                vm, pid, page.vaddr, page.pageSize);
            machine.scheme().prewarm(
                stream.homeCore, page.vaddr, page.pageSize, vm, pid,
                info.hpa >> pageShift(page.pageSize));
        }
    }
}

void
ScenarioEngine::migratePages(unsigned tenant_index, Lane &lane,
                             Cycles &clock)
{
    const std::uint64_t count = spec.migrationPagesPerArrival;
    if (count == 0)
        return;
    const ResolvedTenant &tenant = tenants[tenant_index];
    TenantRuntime &rt = runtimes[tenant_index];
    MemoryMap &map = machine.memoryMap();
    const std::uint64_t num_pages = std::max<std::uint64_t>(
        1, tenant.footprintBytes >> 12);
    for (std::uint64_t k = 0; k < count; ++k) {
        // A deterministic pseudo-random page of the tenant's
        // footprint moves to a new frame: unmap, shoot down the
        // stale translation everywhere, remap.
        const std::uint64_t index =
            mix64((static_cast<std::uint64_t>(tenant_index) << 32) ^
                  k) %
            num_pages;
        const Addr vaddr = static_cast<Addr>(index) << 12;
        map.unmapPage(tenant.vm, tenant.pidBase, vaddr,
                      PageSize::Small4K);
        machine.shootdownPage(vaddr, PageSize::Small4K, tenant.vm,
                              tenant.pidBase);
        map.ensureMapped(tenant.vm, tenant.pidBase, vaddr,
                         PageSize::Small4K);
        clock += engineConfig.shootdownCycles;
        ++lane.shootdowns;
        ++rt.migrations;
        ++migrations;
    }
}

void
ScenarioEngine::advanceSlice(Lane &lane, unsigned core,
                             Cycles &clock)
{
    const std::vector<Slice> &plan = schedule[core];
    const Slice &finished = plan[lane.sliceIndex];
    if (finished.lastOfStream) {
        const TenantStream &stream = streams.at(finished.stream);
        TenantRuntime &rt = runtimes[stream.tenant];
        if (--rt.activeStreams == 0 && rt.departsMidRun &&
            !rt.departed) {
            // The tenant's last vCPU retired: the VM tears down,
            // and its translations are flushed machine-wide.
            machine.shootdownVm(stream.vm);
            clock += engineConfig.shootdownCycles;
            ++lane.shootdowns;
            rt.departed = true;
            ++departures;
        }
    }

    ++lane.sliceIndex;
    simAssert(lane.sliceIndex < plan.size(),
              "core ran past its slice schedule");
    const Slice &next = plan[lane.sliceIndex];
    lane.cursor = &streams.at(next.stream);
    lane.sliceLeft = next.length;

    if (next.firstOfStream) {
        const TenantStream &stream = streams.at(next.stream);
        TenantRuntime &rt = runtimes[stream.tenant];
        if (!rt.arrivalDone) {
            rt.arrivalDone = true;
            migratePages(stream.tenant, lane, clock);
        }
    }
}

void
ScenarioEngine::runPhase(std::uint64_t target)
{
    if (target == 0)
        return;

    DataHierarchy &hierarchy = machine.hierarchy();
    const std::uint64_t interval =
        engineConfig.shootdownIntervalRefs;
    const std::uint64_t storm_interval = spec.storm.intervalRefs;
    const unsigned storm_pages =
        std::max(1u, spec.storm.pagesPerBurst);

    // Seed the scheduler with every lane's current clock — the same
    // (clock, core) lexicographic order the classic engine uses.
    ClockHeap heap;
    heap.reset(lanes.size());
    for (std::uint32_t core = 0; core < lanes.size(); ++core) {
        lanes[core].phaseDone = 0;
        heap.push(lanes[core].clock, core);
    }

    while (!heap.empty()) {
        const std::uint32_t core = heap.topId();
        Lane &lane = lanes[core];
        Mmu &mmu = *lane.mmu;
        Cycles clock = lane.clock;

        // Run this lane until it either finishes the phase or stops
        // being globally earliest; only then touch the heap.
        for (;;) {
            if (lane.sliceLeft == 0)
                advanceSlice(lane, core, clock);
            TenantStream &stream = *lane.cursor;
            if (stream.blockPos == stream.blockLen)
                streams.refill(stream);
            const TraceRecord &record =
                stream.block[stream.blockPos++];
            ++stream.consumed;
            --lane.sliceLeft;
            const VmId vm = stream.vm;
            const ProcessId pid = stream.pid;
            TenantRuntime &tenant = runtimes[stream.tenant];

            // Non-memory instructions retire at one per cycle.
            clock += record.instGap;
            lane.instructions += record.instGap + 1;

            const MmuResult translation = mmu.translate(
                record.vaddr, record.pageSize, vm, pid, clock);
            clock += translation.cycles;
            lane.pageWalks += translation.walked ? 1 : 0;

            // Per-tenant QoS accounting: fixed counters and one
            // log2-histogram sample — nothing here allocates.
            ++tenant.refs;
            tenant.translationCycles += translation.cycles;
            switch (translation.level) {
              case TlbLevel::L1: ++tenant.l1Hits; break;
              case TlbLevel::L2: ++tenant.l2Hits; break;
              default: ++tenant.misses; break;
            }
            tenant.pageWalks += translation.walked ? 1 : 0;
            tenant.latency.sample(translation.cycles);

            const HierarchyAccessResult data = hierarchy.accessData(
                core, translation.hpa, record.type, clock);
            clock += data.latency;

            // Periodic TLB shootdowns (disabled by default).
            if (interval > 0 &&
                ++refsSinceShootdown >= interval) {
                refsSinceShootdown = 0;
                machine.shootdownPage(record.vaddr, record.pageSize,
                                      vm, pid);
                clock += engineConfig.shootdownCycles;
                ++lane.shootdowns;
                ++tenant.shootdowns;
            }

            // Shootdown storms: a burst of consecutive pages starting
            // at the triggering reference's page.
            if (storm_interval > 0 &&
                ++refsSinceStorm >= storm_interval) {
                refsSinceStorm = 0;
                const Addr page =
                    pageBase(record.vaddr, record.pageSize);
                const Addr bytes = pageBytes(record.pageSize);
                for (unsigned p = 0; p < storm_pages; ++p) {
                    machine.shootdownPage(
                        page + static_cast<Addr>(p) * bytes,
                        record.pageSize, vm, pid);
                    clock += engineConfig.shootdownCycles;
                }
                lane.shootdowns += storm_pages;
                tenant.shootdowns += storm_pages;
                stormShootdowns += storm_pages;
            }

            if (++lane.phaseDone == target) {
                lane.clock = clock;
                heap.popTop();
                break;
            }
            if (!heap.staysTop(clock, core)) {
                lane.clock = clock;
                heap.replaceTop(clock);
                break;
            }
        }
    }
}

ScenarioResult
ScenarioEngine::run()
{
    const unsigned cores = machine.numCores();

    // Re-arm the per-run mutable state (runs are repeatable).
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        TenantRuntime &rt = runtimes[i];
        rt.refs = rt.l1Hits = rt.l2Hits = rt.misses = 0;
        rt.translationCycles = rt.pageWalks = 0;
        rt.shootdowns = rt.migrations = 0;
        rt.latency.reset();
        rt.departed = false;
        rt.arrivalDone = tenants[i].arrivalRefs == 0;
        rt.activeStreams = 0;
    }
    for (std::uint32_t s = 0; s < streams.size(); ++s)
        ++runtimes[streams.at(s).tenant].activeStreams;
    departures = migrations = stormShootdowns = 0;

    if (engineConfig.prepopulate) {
        prepopulate();
    } else {
        captured = false;
        streams.releaseCaptures();
    }
    streams.beginRun(captured);

    lanes.assign(cores, Lane{});
    for (unsigned core = 0; core < cores; ++core) {
        Lane &lane = lanes[core];
        lane.mmu = &machine.mmu(core);
        const Slice &first = schedule[core].front();
        lane.cursor = &streams.at(first.stream);
        lane.sliceLeft = first.length;
    }

    // Warmup: populate TLBs, caches, page tables, POM-TLB. Lifecycle
    // flags (arrivals done, departures fired) persist across the
    // boundary; only the statistics reset.
    const std::uint64_t warmup = engineConfig.warmupRefsPerCore;
    if (warmup > 0) {
        runPhase(warmup);
        machine.resetStats();
        for (Lane &lane : lanes) {
            lane.instructions = 0;
            lane.pageWalks = 0;
            lane.shootdowns = 0;
        }
        for (TenantRuntime &rt : runtimes) {
            rt.refs = rt.l1Hits = rt.l2Hits = rt.misses = 0;
            rt.translationCycles = rt.pageWalks = 0;
            rt.shootdowns = rt.migrations = 0;
            rt.latency.reset();
        }
        departures = migrations = stormShootdowns = 0;
    }

    // Measured phase.
    std::vector<Cycles> start_clocks(cores);
    for (unsigned core = 0; core < cores; ++core)
        start_clocks[core] = lanes[core].clock;
    runPhase(engineConfig.refsPerCore);

    ScenarioResult result;
    result.run.cores.resize(cores);
    for (unsigned core = 0; core < cores; ++core) {
        CoreRunStats &stats = result.run.cores[core];
        const Lane &lane = lanes[core];
        const Mmu &mmu = *lane.mmu;
        stats.refs = engineConfig.refsPerCore;
        stats.instructions = lane.instructions;
        stats.cycles = lane.clock - start_clocks[core];
        stats.translationCycles = mmu.totalTranslationCycles();
        stats.l1TlbHits = mmu.l1HitCount();
        stats.l2TlbHits = mmu.l2HitCount();
        stats.lastLevelTlbMisses = mmu.lastLevelMissCount();
        stats.avgPenaltyPerMiss = mmu.avgPenaltyPerMiss();
        stats.pageWalks = lane.pageWalks;
        stats.shootdowns = lane.shootdowns;
    }

    result.tenants.reserve(tenants.size());
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const ResolvedTenant &tenant = tenants[i];
        const TenantRuntime &rt = runtimes[i];
        TenantResult out;
        out.name = tenant.name;
        out.benchmark = tenant.benchmark;
        out.vm = tenant.vm;
        out.pidBase = tenant.pidBase;
        out.vcpus = tenant.vcpus;
        out.arrivalRefs = tenant.arrivalRefs;
        out.departureRefs = tenant.departureRefs;
        out.departed = rt.departed;
        out.refs = rt.refs;
        out.l1TlbHits = rt.l1Hits;
        out.l2TlbHits = rt.l2Hits;
        out.lastLevelTlbMisses = rt.misses;
        out.translationCycles = rt.translationCycles;
        out.pageWalks = rt.pageWalks;
        out.shootdowns = rt.shootdowns;
        out.migrations = rt.migrations;
        out.translationLatency = rt.latency;
        result.tenants.push_back(std::move(out));
    }
    result.departures = departures;
    result.migrations = migrations;
    result.stormShootdowns = stormShootdowns;

    // The captures can be hundreds of megabytes at scale; do not
    // hold them between runs (a later run() re-captures).
    streams.releaseCaptures();
    return result;
}

ScenarioResult
runScenario(Machine &machine, const ScenarioSpec &spec)
{
    ScenarioEngine engine(machine, spec);
    return engine.run();
}

// ---------------------------------------------------------------
// Identity, hashing, export
// ---------------------------------------------------------------

JsonValue
scenarioIdentityJson(const ScenarioSpec &spec)
{
    JsonValue identity = JsonValue::object();
    identity.set("schema", kScenarioSchemaV1);
    identity.set("name", spec.name);
    identity.set("scheme", canonicalScheme(spec.scheme));

    JsonValue config = JsonValue::object();
    config.set("system", systemConfigJson(spec.system));
    config.set("engine", engineConfigJson(spec.engine));
    identity.set("config", std::move(config));

    // The *resolved* tenants, so an explicit list and a generator
    // that expand to the same tenants hash identically.
    JsonValue tenant_list = JsonValue::array();
    for (const ResolvedTenant &t : spec.resolvedTenants()) {
        JsonValue tenant = JsonValue::object();
        tenant.set("name", t.name);
        tenant.set("benchmark", t.benchmark);
        tenant.set("vcpus", std::uint64_t(t.vcpus));
        tenant.set("vm", std::uint64_t(t.vm));
        tenant.set("pid_base", std::uint64_t(t.pidBase));
        tenant.set("arrival_refs", t.arrivalRefs);
        tenant.set("departure_refs", t.departureRefs);
        tenant.set("footprint_bytes", t.footprintBytes);
        tenant.set("multithreaded", t.multithreaded);
        // Only for pack-backed tenants, so generator-driven
        // identities (and their pinned digests) are unchanged. The
        // *content* hash, not the path: editing a record in place
        // changes — and re-executes — the memoized scenario.
        if (!t.tracePack.empty()) {
            tenant.set("trace_pack_hash",
                       tracePackContentHash(t.tracePack));
            tenant.set("trace_stream",
                       std::uint64_t(t.traceStreamBase));
        }
        tenant_list.push(std::move(tenant));
    }
    identity.set("tenants", std::move(tenant_list));

    JsonValue consolidation = JsonValue::object();
    consolidation.set("time_slice_refs",
                      spec.timeSliceRefs ? spec.timeSliceRefs
                                         : std::uint64_t{2000});
    consolidation.set("overcommit_factor", spec.overcommitFactor);
    consolidation.set("migration_pages_per_arrival",
                      spec.migrationPagesPerArrival);
    identity.set("consolidation", std::move(consolidation));

    JsonValue storm = JsonValue::object();
    storm.set("interval_refs", spec.storm.intervalRefs);
    storm.set("pages_per_burst",
              std::uint64_t(spec.storm.pagesPerBurst));
    identity.set("storm", std::move(storm));
    return identity;
}

std::string
scenarioHash(const ScenarioSpec &spec)
{
    return ContentHash::of(scenarioIdentityJson(spec).dump(0));
}

std::string
scenarioBenchmarkLabel(const ScenarioSpec &spec)
{
    std::vector<std::string> names;
    for (const ResolvedTenant &t : spec.resolvedTenants()) {
        if (std::find(names.begin(), names.end(), t.benchmark) ==
            names.end()) {
            names.push_back(t.benchmark);
        }
    }
    std::string label;
    for (const std::string &name : names) {
        if (!label.empty())
            label += "+";
        label += name;
    }
    return label;
}

JsonValue
buildScenarioDocument(Machine &machine, const ScenarioSpec &spec,
                      const ScenarioResult &result)
{
    JsonValue document = JsonValue::object();
    document.set("schema", kScenarioSchemaV1);
    document.set("scenario", scenarioIdentityJson(spec));
    document.set("scenario_hash", scenarioHash(spec));

    JsonValue tenant_list = JsonValue::array();
    for (const TenantResult &t : result.tenants) {
        JsonValue tenant = JsonValue::object();
        tenant.set("name", t.name);
        tenant.set("benchmark", t.benchmark);
        tenant.set("vm", std::uint64_t(t.vm));
        tenant.set("pid_base", std::uint64_t(t.pidBase));
        tenant.set("vcpus", std::uint64_t(t.vcpus));
        tenant.set("arrival_refs", t.arrivalRefs);
        tenant.set("departure_refs", t.departureRefs);
        tenant.set("departed", t.departed);
        tenant.set("refs", t.refs);
        tenant.set("l1_tlb_hits", t.l1TlbHits);
        tenant.set("l2_tlb_hits", t.l2TlbHits);
        tenant.set("last_level_tlb_misses", t.lastLevelTlbMisses);
        tenant.set("l1_hit_ratio",
                   t.refs ? static_cast<double>(t.l1TlbHits) /
                                static_cast<double>(t.refs)
                          : 0.0);
        tenant.set("l2_hit_ratio",
                   t.refs ? static_cast<double>(t.l2TlbHits) /
                                static_cast<double>(t.refs)
                          : 0.0);
        tenant.set("translation_cycles", t.translationCycles);
        tenant.set("avg_translation_cycles",
                   t.translationLatency.mean());
        tenant.set("p50_translation_cycles",
                   t.translationLatency.percentileUpperBound(50.0));
        tenant.set("p95_translation_cycles",
                   t.translationLatency.percentileUpperBound(95.0));
        tenant.set("p99_translation_cycles",
                   t.translationLatency.percentileUpperBound(99.0));
        tenant.set("page_walks", t.pageWalks);
        tenant.set("shootdowns", t.shootdowns);
        tenant.set("migrations", t.migrations);
        tenant.set("translation_cycle_histogram",
                   t.translationLatency.toJson());
        tenant_list.push(std::move(tenant));
    }
    document.set("tenants", std::move(tenant_list));

    JsonValue events = JsonValue::object();
    events.set("departures", result.departures);
    events.set("migrations", result.migrations);
    events.set("storm_shootdowns", result.stormShootdowns);
    document.set("events", std::move(events));

    document.set("stats",
                 buildStatsDocument(machine, result.run,
                                    scenarioBenchmarkLabel(spec)));
    return document;
}

// ---------------------------------------------------------------
// Campaigns: memoized, checkpointed scenario batches
// ---------------------------------------------------------------

namespace
{

/** Journal/cache key of a scenario: "name/scheme". */
std::string
scenarioKey(const ScenarioSpec &spec)
{
    return spec.name + "/" + canonicalScheme(spec.scheme);
}

/** Build the machine, run the scenario, return its document. */
JsonValue
executeScenario(const ScenarioSpec &spec)
{
    Machine machine(spec.system, spec.scheme);
    ScenarioEngine engine(machine, spec);
    const ScenarioResult result = engine.run();
    return buildScenarioDocument(machine, spec, result);
}

} // namespace

JsonValue
runScenarioCampaign(
    const std::vector<ScenarioSpec> &specs,
    const ScenarioCampaignOptions &options,
    SweepServiceStats *stats,
    const std::function<void(const ScenarioJobReport &,
                             const JsonValue &)> &emit)
{
    const std::size_t count = specs.size();
    SweepServiceStats accounting;
    accounting.jobs = count;

    std::vector<std::string> hashes(count);
    for (std::size_t i = 0; i < count; ++i)
        hashes[i] = scenarioHash(specs[i]);

    // Owner = the first index of each distinct hash; duplicates
    // reuse the owner's document (identical identity implies an
    // identical result).
    std::map<std::string, std::vector<std::size_t>> by_hash;
    for (std::size_t i = 0; i < count; ++i)
        by_hash[hashes[i]].push_back(i);

    std::unique_ptr<SweepCache> cache;
    if (!options.cacheDir.empty())
        cache = std::make_unique<SweepCache>(options.cacheDir);

    std::unique_ptr<SweepJournal> journal;
    std::map<std::string, JsonValue> replayed;
    if (!options.journalPath.empty()) {
        journal =
            std::make_unique<SweepJournal>(options.journalPath);
        replayed = journal->open(sweepHash(hashes), count);
    }

    std::vector<JsonValue> entries(count);
    std::vector<char> ready(count, 0);
    std::vector<JobSource> origins(count, JobSource::Executed);
    std::vector<double> walls(count, 0.0);

    // Emission frontier: emit() fires for index i only once every
    // j <= i is ready, so consumers see a strictly growing prefix.
    std::size_t frontier = 0;
    const auto drain = [&] {
        while (frontier < count && ready[frontier]) {
            if (emit) {
                ScenarioJobReport report;
                report.index = frontier;
                report.name = specs[frontier].name;
                report.hash = hashes[frontier];
                report.source = origins[frontier];
                report.wallSeconds = walls[frontier];
                emit(report, entries[frontier]);
            }
            ++frontier;
        }
    };

    const auto resolve = [&](const std::string &hash,
                             JsonValue document, JobSource source,
                             double wall) {
        const std::vector<std::size_t> &indices = by_hash[hash];
        for (const std::size_t index : indices) {
            entries[index] = document;
            origins[index] = source;
            walls[index] = index == indices.front() ? wall : 0.0;
            ready[index] = 1;
        }
        accounting.deduplicated += indices.size() - 1;
        drain();
    };

    // Pass 1: satisfy whatever the journal and cache already hold.
    std::vector<std::size_t> pending_owner;
    for (const auto &[hash, indices] : by_hash) {
        const std::size_t owner = indices.front();
        if (const auto hit = replayed.find(hash);
            hit != replayed.end()) {
            accounting.journalHits += indices.size();
            resolve(hash, hit->second, JobSource::Journal, 0.0);
            continue;
        }
        if (cache) {
            if (std::optional<JsonValue> entry =
                    cache->lookup(hash)) {
                accounting.cacheHits += indices.size();
                if (journal) {
                    journal->append(hash, scenarioKey(specs[owner]),
                                    "cache", 0.0, *entry);
                }
                resolve(hash, std::move(*entry), JobSource::Cache,
                        0.0);
                continue;
            }
        }
        pending_owner.push_back(owner);
    }

    // Pass 2: execute only the delta on a worker pool. Completions
    // serialise on one mutex (cache/journal/frontier state), and the
    // documents carry no wall time, so the assembled output is
    // byte-identical at any worker count and any source mix.
    if (!pending_owner.empty()) {
        unsigned workers =
            options.jobs ? options.jobs
                         : std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
        workers = static_cast<unsigned>(std::min<std::size_t>(
            workers, pending_owner.size()));

        std::atomic<std::size_t> next{0};
        std::mutex mutex;
        std::vector<std::exception_ptr> errors(
            pending_owner.size());

        const auto worker = [&] {
            for (;;) {
                const std::size_t pending =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (pending >= pending_owner.size())
                    return;
                const std::size_t owner = pending_owner[pending];
                JsonValue document;
                const auto start =
                    std::chrono::steady_clock::now();
                try {
                    document = executeScenario(specs[owner]);
                } catch (...) {
                    errors[pending] = std::current_exception();
                    continue;
                }
                const double wall =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();

                std::lock_guard<std::mutex> lock(mutex);
                if (cache) {
                    cache->store(hashes[owner],
                                 scenarioKey(specs[owner]),
                                 document);
                }
                if (journal) {
                    journal->append(hashes[owner],
                                    scenarioKey(specs[owner]),
                                    "executed", wall, document);
                }
                ++accounting.executed;
                resolve(hashes[owner], std::move(document),
                        JobSource::Executed, wall);
                if (options.crashAfterAppends != 0 && journal &&
                    journal->appended() >=
                        options.crashAfterAppends) {
                    // Fault injection: vanish mid-campaign with no
                    // cleanup, exactly like a SIGKILL would.
                    std::_Exit(137);
                }
            }
        };

        if (workers == 1) {
            worker();
        } else {
            std::vector<std::thread> pool;
            pool.reserve(workers);
            for (unsigned w = 0; w < workers; ++w)
                pool.emplace_back(worker);
            for (std::thread &thread : pool)
                thread.join();
        }

        // Deterministic failure: the lowest pending index wins, the
        // way SweepRunner reports (completed work is journaled, so
        // a failed campaign resumes past everything that worked).
        for (const std::exception_ptr &error : errors) {
            if (error)
                std::rethrow_exception(error);
        }
    }

    if (cache)
        accounting.quarantined = cache->quarantined();
    if (stats)
        *stats = accounting;

    JsonValue runs = JsonValue::array();
    for (std::size_t i = 0; i < count; ++i)
        runs.push(std::move(entries[i]));
    JsonValue document = JsonValue::object();
    document.set("schema", kScenarioSchemaV1);
    document.set("runs", std::move(runs));
    return document;
}

} // namespace pomtlb

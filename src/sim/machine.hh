/**
 * @file
 * The full simulated machine: cores (MMUs + walkers), the data-cache
 * hierarchy, main-memory and die-stacked DRAM channels, the OS/VM
 * memory map, and one translation scheme. Construct one per
 * experiment configuration.
 */

#ifndef POMTLB_SIM_MACHINE_HH
#define POMTLB_SIM_MACHINE_HH

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "dram/controller.hh"
#include "pagetable/memory_map.hh"
#include "pagetable/walker.hh"
#include "pomtlb/pom_tlb.hh"
#include "pomtlb/scheme.hh"
#include "sim/mmu.hh"
#include "sim/scheme.hh"
#include "sim/translation_trace.hh"

namespace pomtlb
{

/** A complete machine instance wired for one translation scheme. */
class Machine
{
  public:
    /**
     * Build a machine running the named translation scheme.
     *
     * @param config System geometry and feature switches.
     * @param scheme Registry name (canonical or alias) of the
     *               translation scheme to build behind the private
     *               SRAM TLBs; throws std::invalid_argument when no
     *               registered scheme answers to it.
     */
    Machine(const SystemConfig &config, const std::string &scheme);

    /**
     * Legacy-enum convenience: equivalent to constructing with
     * schemeKindName(scheme_kind).
     *
     * @deprecated Construct with the registry scheme name (e.g.
     *             "POM-TLB") instead; this shim exists only for
     *             out-of-tree callers and will be removed with
     *             SchemeKind.
     *
     * @param config      System geometry and feature switches.
     * @param scheme_kind Which of the paper's four schemes to build.
     */
    Machine(const SystemConfig &config, SchemeKind scheme_kind);

    /** Core @p core's MMU front end. */
    Mmu &mmu(CoreId core) { return *mmus[core]; }
    /** Core @p core's page walker. */
    PageWalker &walker(CoreId core) { return *walkers[core]; }
    /** The shared data-cache hierarchy. */
    DataHierarchy &hierarchy() { return *dataHierarchy; }
    /** The OS/VM memory map (page tables, frame allocation). */
    MemoryMap &memoryMap() { return *memMap; }
    /** The translation scheme behind the SRAM TLBs. */
    TranslationScheme &scheme() { return *translationScheme; }
    /** The main-memory (DDR4) channel. */
    DramController &mainMemory() { return *mainMem; }
    /** The die-stacked channel (POM-TLB traffic). */
    DramController &dieStackedMemory() { return *dieStacked; }

    /** The POM-TLB device; null unless the scheme asked for one. */
    PomTlb *pomTlbDevice() { return pomTlb.get(); }
    /** The POM-TLB scheme view; null for other schemes. */
    PomTlbScheme *pomTlbScheme();

    /**
     * The page-walker pool (one walker per core) a scheme factory
     * wires its fallback path to.
     */
    std::vector<std::unique_ptr<PageWalker>> &walkerPool()
    {
        return walkers;
    }

    /**
     * The die-stacked POM-TLB device, constructed on first request —
     * for scheme factories that keep their translations in the
     * die-stacked DRAM partition.
     */
    PomTlb &ensurePomTlbDevice();

    /** Canonical registry name of the scheme this machine runs. */
    const std::string &schemeName() const { return schemeKey; }

    /**
     * The legacy SchemeKind of the scheme this machine runs; empty
     * for registry contenders outside the paper's original four.
     */
    std::optional<SchemeKind> schemeKind() const { return legacyKind; }
    /** The (validated) system configuration the machine runs. */
    const SystemConfig &config() const { return systemConfig; }
    /** Number of cores (MMU/walker pairs). */
    unsigned numCores() const { return systemConfig.numCores; }

    /**
     * The machine-wide statistics registry: every component's
     * top-level StatGroup, registered at construction. This tree is
     * the `components` section of the `pomtlb-stats-v1` document.
     */
    const StatsRegistry &registry() const { return statsRegistry; }

    /**
     * Attach a sampling translation tracer shared by every MMU.
     * @param capacity        Ring capacity in events.
     * @param sample_interval 1-in-N sampling interval (0 = the
     *                        POMTLB_TRACE_SAMPLE default).
     * @return The created tracer (owned by the machine).
     */
    TranslationTracer &enableTracing(std::size_t capacity = 4096,
                                     std::uint64_t sample_interval = 0);

    /** The attached tracer, or null when tracing is off. */
    TranslationTracer *tracer() { return eventTracer.get(); }
    /** The attached tracer, or null when tracing is off. */
    const TranslationTracer *tracer() const { return eventTracer.get(); }

    /** Full VM shootdown: TLBs, PSCs, POM-TLB, scheme state. */
    void shootdownVm(VmId vm);

    /**
     * Single-page TLB shootdown (Section 2.2): drop the page's
     * translation from every core's SRAM TLBs and from the scheme's
     * persistent store (POM-TLB entry + its cached set line, shared
     * TLB entry, or TSB slots).
     */
    void shootdownPage(Addr vaddr, PageSize size, VmId vm,
                       ProcessId pid);

    /** Reset every statistic (used at the warmup boundary). */
    void resetStats();

    /** Dump every component's statistics as "name value" lines. */
    void dumpStats(std::ostream &os) const;

    /**
     * Collect every component's statistics as (flat-name, value)
     * pairs — the programmatic twin of dumpStats(), used by the
     * sweep result writer.
     */
    void collectStats(
        std::vector<std::pair<std::string, double>> &out) const;

  private:
    /** Register every component's top-level group (ctor tail). */
    void buildRegistry();

    SystemConfig systemConfig;
    /** Canonical registry name of the running scheme. */
    std::string schemeKey;
    /** Legacy enum value, when the scheme shims one. */
    std::optional<SchemeKind> legacyKind;

    std::unique_ptr<DramController> mainMem;
    std::unique_ptr<DramController> dieStacked;
    /** Extra die-stacked channel for the optional L4 data cache. */
    std::unique_ptr<DramController> l4Channel;
    std::unique_ptr<MemoryMap> memMap;
    std::unique_ptr<DataHierarchy> dataHierarchy;
    std::vector<std::unique_ptr<PageWalker>> walkers;
    std::unique_ptr<PomTlb> pomTlb;
    std::unique_ptr<TranslationScheme> translationScheme;
    std::vector<std::unique_ptr<Mmu>> mmus;
    std::unique_ptr<TranslationTracer> eventTracer;
    StatsRegistry statsRegistry;
};

} // namespace pomtlb

#endif // POMTLB_SIM_MACHINE_HH

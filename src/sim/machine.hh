/**
 * @file
 * The full simulated machine: cores (MMUs + walkers), the data-cache
 * hierarchy, main-memory and die-stacked DRAM channels, the OS/VM
 * memory map, and one translation scheme. Construct one per
 * experiment configuration.
 */

#ifndef POMTLB_SIM_MACHINE_HH
#define POMTLB_SIM_MACHINE_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/config.hh"
#include "dram/controller.hh"
#include "pagetable/memory_map.hh"
#include "pagetable/walker.hh"
#include "pomtlb/pom_tlb.hh"
#include "pomtlb/scheme.hh"
#include "sim/mmu.hh"
#include "sim/scheme.hh"

namespace pomtlb
{

/** A complete machine instance wired for one translation scheme. */
class Machine
{
  public:
    Machine(const SystemConfig &config, SchemeKind scheme_kind);

    Mmu &mmu(CoreId core) { return *mmus[core]; }
    PageWalker &walker(CoreId core) { return *walkers[core]; }
    DataHierarchy &hierarchy() { return *dataHierarchy; }
    MemoryMap &memoryMap() { return *memMap; }
    TranslationScheme &scheme() { return *translationScheme; }
    DramController &mainMemory() { return *mainMem; }
    DramController &dieStackedMemory() { return *dieStacked; }

    /** The POM-TLB device; null unless built with SchemeKind::PomTlb. */
    PomTlb *pomTlbDevice() { return pomTlb.get(); }
    /** The POM-TLB scheme view; null for other schemes. */
    PomTlbScheme *pomTlbScheme();

    SchemeKind schemeKind() const { return kind; }
    const SystemConfig &config() const { return systemConfig; }
    unsigned numCores() const { return systemConfig.numCores; }

    /** Full VM shootdown: TLBs, PSCs, POM-TLB, scheme state. */
    void shootdownVm(VmId vm);

    /**
     * Single-page TLB shootdown (Section 2.2): drop the page's
     * translation from every core's SRAM TLBs and from the scheme's
     * persistent store (POM-TLB entry + its cached set line, shared
     * TLB entry, or TSB slots).
     */
    void shootdownPage(Addr vaddr, PageSize size, VmId vm,
                       ProcessId pid);

    /** Reset every statistic (used at the warmup boundary). */
    void resetStats();

    /** Dump every component's statistics as "name value" lines. */
    void dumpStats(std::ostream &os) const;

    /**
     * Collect every component's statistics as (flat-name, value)
     * pairs — the programmatic twin of dumpStats(), used by the
     * sweep result writer.
     */
    void collectStats(
        std::vector<std::pair<std::string, double>> &out) const;

  private:
    SystemConfig systemConfig;
    SchemeKind kind;

    std::unique_ptr<DramController> mainMem;
    std::unique_ptr<DramController> dieStacked;
    /** Extra die-stacked channel for the optional L4 data cache. */
    std::unique_ptr<DramController> l4Channel;
    std::unique_ptr<MemoryMap> memMap;
    std::unique_ptr<DataHierarchy> dataHierarchy;
    std::vector<std::unique_ptr<PageWalker>> walkers;
    std::unique_ptr<PomTlb> pomTlb;
    std::unique_ptr<TranslationScheme> translationScheme;
    std::vector<std::unique_ptr<Mmu>> mmus;
};

} // namespace pomtlb

#endif // POMTLB_SIM_MACHINE_HH

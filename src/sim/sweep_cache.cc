#include "sim/sweep_cache.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <system_error>
#include <unistd.h>

#include "common/content_hash.hh"
#include "common/log.hh"
#include "trace/tracepack.hh"

namespace fs = std::filesystem;

namespace pomtlb
{

// ---------------------------------------------------------------
// Job identity and hashing
// ---------------------------------------------------------------

namespace
{

JsonValue
cacheConfigJson(const CacheConfig &config)
{
    JsonValue object = JsonValue::object();
    object.set("name", config.name);
    object.set("size_bytes", config.sizeBytes);
    object.set("associativity", std::uint64_t(config.associativity));
    object.set("line_bytes", std::uint64_t(config.lineBytes));
    object.set("access_latency", config.accessLatency);
    return object;
}

JsonValue
tlbConfigJson(const TlbConfig &config)
{
    JsonValue object = JsonValue::object();
    object.set("name", config.name);
    object.set("entries", std::uint64_t(config.entries));
    object.set("associativity", std::uint64_t(config.associativity));
    object.set("miss_penalty", config.missPenalty);
    object.set("access_latency", config.accessLatency);
    return object;
}

JsonValue
pscConfigJson(const PscConfig &config)
{
    JsonValue object = JsonValue::object();
    object.set("pml4_entries", std::uint64_t(config.pml4Entries));
    object.set("pdp_entries", std::uint64_t(config.pdpEntries));
    object.set("pde_entries", std::uint64_t(config.pdeEntries));
    object.set("access_latency", config.accessLatency);
    object.set("nested_tlb_entries",
               std::uint64_t(config.nestedTlbEntries));
    object.set("nested_tlb_associativity",
               std::uint64_t(config.nestedTlbAssociativity));
    object.set("nested_tlb_latency", config.nestedTlbLatency);
    return object;
}

JsonValue
dramConfigJson(const DramConfig &config)
{
    JsonValue object = JsonValue::object();
    object.set("name", config.name);
    object.set("bus_freq_ghz", config.busFreqGhz);
    object.set("bus_width_bits", std::uint64_t(config.busWidthBits));
    object.set("row_buffer_bytes", config.rowBufferBytes);
    object.set("t_cas", std::uint64_t(config.tCas));
    object.set("t_rcd", std::uint64_t(config.tRcd));
    object.set("t_rp", std::uint64_t(config.tRp));
    object.set("num_banks", std::uint64_t(config.numBanks));
    object.set("num_channels", std::uint64_t(config.numChannels));
    object.set("burst_bytes", std::uint64_t(config.burstBytes));
    object.set("core_freq_ghz", config.coreFreqGhz);
    object.set("max_queue_bus_cycles",
               std::uint64_t(config.maxQueueBusCycles));
    object.set("refresh_enabled", config.refreshEnabled);
    object.set("refresh_interval_bus_cycles",
               std::uint64_t(config.refreshIntervalBusCycles));
    object.set("refresh_bus_cycles",
               std::uint64_t(config.refreshBusCycles));
    object.set("t_faw", std::uint64_t(config.tFaw));
    return object;
}

JsonValue
pomTlbConfigJson(const PomTlbConfig &config)
{
    JsonValue object = JsonValue::object();
    object.set("capacity_bytes", config.capacityBytes);
    object.set("small_partition_fraction",
               config.smallPartitionFraction);
    object.set("entry_bytes", std::uint64_t(config.entryBytes));
    object.set("associativity", std::uint64_t(config.associativity));
    object.set("predictor_entries",
               std::uint64_t(config.predictorEntries));
    object.set("base_address", config.baseAddress);
    object.set("cacheable", config.cacheable);
    object.set("bypass_predictor", config.bypassPredictor);
    object.set("size_predictor", config.sizePredictor);
    object.set("prefetch_next_set", config.prefetchNextSet);
    object.set("unified_organization", config.unifiedOrganization);
    return object;
}

JsonValue
tsbConfigJson(const TsbConfig &config)
{
    JsonValue object = JsonValue::object();
    object.set("capacity_bytes", config.capacityBytes);
    object.set("entry_bytes", std::uint64_t(config.entryBytes));
    object.set("trap_cycles", config.trapCycles);
    object.set("accesses_per_translation",
               std::uint64_t(config.accessesPerTranslation));
    return object;
}

JsonValue
coalescedConfigJson(const CoalescedTlbConfig &config)
{
    JsonValue object = JsonValue::object();
    object.set("range_pages", std::uint64_t(config.rangePages));
    object.set("associativity", std::uint64_t(config.associativity));
    object.set("access_latency", config.accessLatency);
    return object;
}

JsonValue
victimaConfigJson(const VictimaConfig &config)
{
    JsonValue object = JsonValue::object();
    object.set("base_address", config.baseAddress);
    object.set("entries_per_block",
               std::uint64_t(config.entriesPerBlock));
    object.set("region_bytes", config.regionBytes);
    return object;
}

} // namespace

JsonValue
systemConfigJson(const SystemConfig &config)
{
    JsonValue object = JsonValue::object();
    object.set("num_cores", std::uint64_t(config.numCores));
    object.set("core_freq_ghz", config.coreFreqGhz);
    object.set("mode", execModeName(config.mode));
    object.set("l1d", cacheConfigJson(config.l1d));
    object.set("l2", cacheConfigJson(config.l2));
    object.set("l3", cacheConfigJson(config.l3));
    object.set("l1_tlb_small", tlbConfigJson(config.l1TlbSmall));
    object.set("l1_tlb_large", tlbConfigJson(config.l1TlbLarge));
    object.set("l2_tlb", tlbConfigJson(config.l2Tlb));
    object.set("psc", pscConfigJson(config.psc));
    object.set("tlb_aware_caching", config.tlbAwareCaching);
    object.set("model_writeback_traffic",
               config.modelWritebackTraffic);
    object.set("die_stacked_l4_cache", config.dieStackedL4Cache);
    object.set("l4_cache_bytes", config.l4CacheBytes);
    object.set("die_stacked", dramConfigJson(config.dieStacked));
    object.set("main_memory", dramConfigJson(config.mainMemory));
    object.set("pom_tlb", pomTlbConfigJson(config.pomTlb));
    object.set("tsb", tsbConfigJson(config.tsb));
    object.set("coalesced", coalescedConfigJson(config.coalesced));
    object.set("victima", victimaConfigJson(config.victima));
    object.set("seed", config.seed);
    return object;
}

JsonValue
engineConfigJson(const EngineConfig &config)
{
    JsonValue object = JsonValue::object();
    object.set("refs_per_core", config.refsPerCore);
    object.set("warmup_refs_per_core", config.warmupRefsPerCore);
    JsonValue core_vm = JsonValue::array();
    for (const VmId vm : config.coreVm)
        core_vm.push(std::uint64_t(vm));
    object.set("core_vm", std::move(core_vm));
    object.set("pid_base", std::uint64_t(config.pidBase));
    object.set("seed", config.seed);
    object.set("shootdown_interval_refs",
               config.shootdownIntervalRefs);
    object.set("shootdown_cycles", config.shootdownCycles);
    object.set("prepopulate", config.prepopulate);
    // Emitted only for trace-pack-driven runs so generator-driven
    // identities (and their pinned golden digests) are unchanged.
    // The identity is the pack's *content* hash, not its path: the
    // same records hash identically anywhere, and editing a record
    // in place changes — and therefore re-executes — the job.
    if (!config.tracePackPath.empty())
        object.set("trace_pack_hash",
                   tracePackContentHash(config.tracePackPath));
    // runThreads and epochCycles are deliberately NOT part of the
    // identity: they choose an execution strategy, not a simulated
    // configuration, and sharded runs are bit-identical to serial
    // ones (docs/internals.md §14, tests/test_engine_sharded.cc) —
    // so a cache entry computed at any thread count serves them all.
    return object;
}

namespace
{

/** A best-effort-unique temporary filename component. */
std::string
tmpSuffix(std::size_t counter)
{
    return std::to_string(::getpid()) + "-" +
           std::to_string(counter);
}

} // namespace

JsonValue
jobIdentityJson(const ExperimentRequest &request)
{
    JsonValue identity = JsonValue::object();
    identity.set("schema", kSweepCacheSchemaV1);
    identity.set("benchmark", request.benchmark);
    identity.set("scheme", request.scheme);
    identity.set("label", request.label);
    identity.set("component_stats", request.collectComponentStats);
    JsonValue config = JsonValue::object();
    config.set("system", systemConfigJson(request.config.system));
    config.set("engine", engineConfigJson(request.config.engine));
    identity.set("config", std::move(config));
    return identity;
}

std::string
jobHash(const ExperimentRequest &request)
{
    return ContentHash::of(jobIdentityJson(request).dump(0));
}

std::string
sweepHash(const std::vector<std::string> &job_hashes)
{
    ContentHash hash;
    for (const std::string &job : job_hashes) {
        hash.update(job);
        hash.update("\n");
    }
    return hash.hexDigest();
}

// ---------------------------------------------------------------
// SweepCache
// ---------------------------------------------------------------

SweepCache::SweepCache(std::string dir) : directory(std::move(dir))
{
    std::error_code error;
    fs::create_directories(directory, error);
    if (error) {
        warn("sweep cache: cannot create ", directory, ": ",
             error.message());
    }
}

std::string
SweepCache::entryPath(const std::string &job_hash) const
{
    return (fs::path(directory) / (job_hash + ".json")).string();
}

void
SweepCache::quarantine(const std::string &path)
{
    std::error_code error;
    const fs::path quarantine_dir =
        fs::path(directory) / "quarantine";
    fs::create_directories(quarantine_dir, error);
    fs::path target =
        quarantine_dir / fs::path(path).filename();
    // Keep every quarantined generation: suffix until unused.
    while (fs::exists(target, error))
        target += "." + tmpSuffix(++tmpCounter);
    fs::rename(path, target, error);
    if (error) {
        // Rename across the same directory tree should not fail;
        // if it somehow does, drop the corrupt entry so it cannot
        // be served again.
        fs::remove(path, error);
    }
    ++quarantineCount;
    warn("sweep cache: quarantined corrupt entry ", path);
}

std::optional<JsonValue>
SweepCache::lookup(const std::string &job_hash)
{
    const std::string path = entryPath(job_hash);
    std::ifstream in(path);
    if (!in)
        return std::nullopt; // plain miss
    std::stringstream buffer;
    buffer << in.rdbuf();
    in.close();

    try {
        JsonValue entry = JsonValue::parse(buffer.str());
        if (!entry.isObject() || !entry.has("schema") ||
            entry.at("schema").asString() != kSweepCacheSchemaV1 ||
            !entry.has("job_hash") ||
            entry.at("job_hash").asString() != job_hash ||
            !entry.has("run") || !entry.at("run").isObject()) {
            quarantine(path);
            return std::nullopt;
        }
        return entry.at("run");
    } catch (const std::exception &) {
        quarantine(path);
        return std::nullopt;
    }
}

void
SweepCache::store(const std::string &job_hash,
                  const std::string &key, const JsonValue &run)
{
    JsonValue entry = JsonValue::object();
    entry.set("schema", kSweepCacheSchemaV1);
    entry.set("job_hash", job_hash);
    entry.set("key", key);
    entry.set("run", run);

    // Write-then-rename: the entry appears atomically or not at
    // all, so concurrent sweeps sharing one cache directory never
    // read a torn blob (last writer wins, and both wrote identical
    // bytes by construction).
    const fs::path tmp =
        fs::path(directory) /
        (".tmp-" + job_hash + "-" + tmpSuffix(++tmpCounter));
    {
        std::ofstream out(tmp);
        if (!out) {
            warn("sweep cache: cannot write ", tmp.string());
            return;
        }
        entry.write(out, 0);
        out << "\n";
    }
    std::error_code error;
    fs::rename(tmp, entryPath(job_hash), error);
    if (error) {
        warn("sweep cache: cannot publish ", entryPath(job_hash),
             ": ", error.message());
        fs::remove(tmp, error);
    }
}

// ---------------------------------------------------------------
// Cache eviction
// ---------------------------------------------------------------

SweepCacheGcStats
sweepCacheGc(const std::string &dir, std::uint64_t max_bytes,
             std::uint64_t max_age_seconds, bool dry_run)
{
    SweepCacheGcStats stats;

    struct Entry
    {
        fs::path path;
        fs::file_time_type mtime;
        std::uint64_t bytes = 0;
    };
    std::vector<Entry> entries;

    std::error_code error;
    for (const fs::directory_entry &item :
         fs::directory_iterator(dir, error)) {
        if (!item.is_regular_file(error))
            continue;
        const std::string name = item.path().filename().string();
        // Only published entries: skip in-flight ".tmp-*"
        // temporaries (hidden) and anything that is not an entry
        // blob. The quarantine/ subdirectory is not iterated at
        // all (non-recursive walk).
        if (name.empty() || name.front() == '.' ||
            item.path().extension() != ".json") {
            continue;
        }
        Entry entry;
        entry.path = item.path();
        entry.mtime = fs::last_write_time(item.path(), error);
        if (error)
            continue;
        entry.bytes = item.file_size(error);
        if (error)
            continue;
        entries.push_back(std::move(entry));
    }
    stats.scanned = entries.size();

    // Oldest first; name breaks mtime ties so a pass is
    // deterministic on coarse-granularity filesystems.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path.filename() < b.path.filename();
              });

    std::uint64_t total = 0;
    for (const Entry &entry : entries)
        total += entry.bytes;

    const fs::file_time_type now = fs::file_time_type::clock::now();
    const auto evict = [&](const Entry &entry) {
        if (!dry_run) {
            std::error_code remove_error;
            if (!fs::remove(entry.path, remove_error)) {
                warn("cache-gc: cannot remove ",
                     entry.path.string(), ": ",
                     remove_error.message());
                return false;
            }
        }
        ++stats.evicted;
        stats.bytesFreed += entry.bytes;
        total -= entry.bytes;
        return true;
    };

    std::vector<char> gone(entries.size(), 0);
    if (max_age_seconds > 0) {
        const auto horizon =
            now - std::chrono::seconds(max_age_seconds);
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].mtime < horizon && evict(entries[i]))
                gone[i] = 1;
        }
    }
    if (max_bytes > 0) {
        for (std::size_t i = 0;
             i < entries.size() && total > max_bytes; ++i) {
            if (!gone[i] && evict(entries[i]))
                gone[i] = 1;
        }
    }
    stats.bytesKept = total;
    return stats;
}

// ---------------------------------------------------------------
// SweepJournal
// ---------------------------------------------------------------

SweepJournal::SweepJournal(std::string journal_path)
    : journalPath(std::move(journal_path))
{
}

std::map<std::string, JsonValue>
SweepJournal::open(const std::string &sweep_hash_value,
                   std::size_t jobs)
{
    std::map<std::string, JsonValue> completed;

    std::string text;
    {
        std::ifstream in(journalPath);
        if (in) {
            std::stringstream buffer;
            buffer << in.rdbuf();
            text = buffer.str();
        }
    }

    bool header_ok = false;
    std::size_t valid_bytes = 0;
    std::size_t pos = 0;
    bool first = true;
    while (true) {
        const std::size_t newline = text.find('\n', pos);
        if (newline == std::string::npos)
            break; // no terminator: a torn tail (or empty file)
        const std::string line = text.substr(pos, newline - pos);
        try {
            const JsonValue record = JsonValue::parse(line);
            if (first) {
                if (!record.isObject() || !record.has("schema") ||
                    record.at("schema").asString() !=
                        kSweepJournalSchemaV1 ||
                    record.at("sweep_hash").asString() !=
                        sweep_hash_value ||
                    record.at("jobs").asUint() != jobs) {
                    break; // different campaign: restart below
                }
                header_ok = true;
            } else {
                completed.emplace(
                    record.at("job_hash").asString(),
                    record.at("run"));
            }
        } catch (const std::exception &) {
            break; // torn or corrupt: drop this line and the rest
        }
        valid_bytes = newline + 1;
        pos = newline + 1;
        first = false;
    }

    std::error_code error;
    if (!header_ok) {
        // A different campaign (or a corrupt header) owns the
        // file: restart it. Durable results live in the cache, so
        // nothing is lost beyond this journal's replay shortcut.
        completed.clear();
        out.open(journalPath, std::ios::trunc);
        JsonValue header = JsonValue::object();
        header.set("schema", kSweepJournalSchemaV1);
        header.set("sweep_hash", sweep_hash_value);
        header.set("jobs", std::uint64_t(jobs));
        header.write(out, 0);
        out << "\n";
        out.flush();
        return completed;
    }

    // Truncate the torn tail (if any) so appends keep the file
    // valid JSONL, then position at the end.
    if (valid_bytes < text.size())
        fs::resize_file(journalPath, valid_bytes, error);
    out.open(journalPath, std::ios::app);
    return completed;
}

void
SweepJournal::append(const std::string &job_hash,
                     const std::string &key,
                     const std::string &source, double wall_seconds,
                     const JsonValue &run)
{
    if (!out.is_open())
        out.open(journalPath, std::ios::app);
    JsonValue record = JsonValue::object();
    record.set("job_hash", job_hash);
    record.set("key", key);
    record.set("source", source);
    record.set("wall_seconds", wall_seconds);
    record.set("run", run);
    record.write(out, 0);
    out << "\n";
    out.flush();
    ++appendCount;
}

// ---------------------------------------------------------------
// SweepService
// ---------------------------------------------------------------

const char *
jobSourceName(JobSource source)
{
    switch (source) {
      case JobSource::Executed: return "executed";
      case JobSource::Cache: return "cache";
      case JobSource::Journal: return "journal";
    }
    return "unknown";
}

SweepService::SweepService(SweepServiceOptions service_options)
    : serviceOptions(std::move(service_options))
{
}

JsonValue
SweepService::run(const std::vector<ExperimentRequest> &requests,
                  const Emit &emit)
{
    const std::size_t count = requests.size();
    lastStats = SweepServiceStats{};
    lastStats.jobs = count;

    std::vector<std::string> hashes(count);
    for (std::size_t i = 0; i < count; ++i)
        hashes[i] = jobHash(requests[i]);

    // Owner = the first index of each distinct hash; duplicates
    // reuse the owner's entry (identical identity implies an
    // identical result).
    std::map<std::string, std::vector<std::size_t>> by_hash;
    for (std::size_t i = 0; i < count; ++i)
        by_hash[hashes[i]].push_back(i);

    std::unique_ptr<SweepCache> cache;
    if (!serviceOptions.cacheDir.empty())
        cache = std::make_unique<SweepCache>(
            serviceOptions.cacheDir);

    std::unique_ptr<SweepJournal> journal;
    std::map<std::string, JsonValue> replayed;
    if (!serviceOptions.journalPath.empty()) {
        journal = std::make_unique<SweepJournal>(
            serviceOptions.journalPath);
        replayed = journal->open(sweepHash(hashes), count);
    }

    std::vector<JsonValue> entries(count);
    std::vector<char> ready(count, 0);
    std::vector<JobSource> sources(count, JobSource::Executed);
    std::vector<double> walls(count, 0.0);

    // Emission frontier: emit() fires for index i only once every
    // j <= i is ready, so consumers see a strictly growing prefix.
    std::size_t frontier = 0;
    auto drain = [&] {
        while (frontier < count && ready[frontier]) {
            if (emit) {
                SweepJobReport report;
                report.index = frontier;
                report.key = requests[frontier].key();
                report.hash = hashes[frontier];
                report.source = sources[frontier];
                report.wallSeconds = walls[frontier];
                emit(report, entries[frontier]);
            }
            ++frontier;
        }
    };

    auto resolve = [&](const std::string &hash, JsonValue entry,
                       JobSource source, double wall) {
        const std::vector<std::size_t> &indices = by_hash[hash];
        for (const std::size_t index : indices) {
            entries[index] = entry;
            sources[index] = source;
            walls[index] = index == indices.front() ? wall : 0.0;
            ready[index] = 1;
        }
        lastStats.deduplicated += indices.size() - 1;
        drain();
    };

    // Pass 1: satisfy whatever the journal and cache already hold.
    std::vector<std::size_t> pending_owner;
    std::vector<ExperimentRequest> pending_requests;
    for (const auto &[hash, indices] : by_hash) {
        const std::size_t owner = indices.front();
        if (const auto hit = replayed.find(hash);
            hit != replayed.end()) {
            lastStats.journalHits += indices.size();
            resolve(hash, hit->second, JobSource::Journal, 0.0);
            continue;
        }
        if (cache) {
            if (std::optional<JsonValue> entry =
                    cache->lookup(hash)) {
                lastStats.cacheHits += indices.size();
                if (journal) {
                    journal->append(hash, requests[owner].key(),
                                    "cache", 0.0, *entry);
                }
                resolve(hash, std::move(*entry), JobSource::Cache,
                        0.0);
                continue;
            }
        }
        pending_owner.push_back(owner);
        pending_requests.push_back(requests[owner]);
    }

    // Pass 2: execute only the delta, checkpointing and streaming
    // as each job completes. The callback runs serialised by the
    // runner, so cache/journal/frontier state needs no extra lock.
    if (!pending_requests.empty()) {
        const SweepRunner runner(serviceOptions.jobs);
        runner.run(
            pending_requests,
            [&](std::size_t pending_index,
                const ExperimentResult &result) {
                const std::size_t owner =
                    pending_owner[pending_index];
                const std::string &hash = hashes[owner];
                // Identity form: wall_seconds is host noise, and
                // cached bytes must be independent of which run
                // produced them. Real wall time travels in the
                // journal record and the job report instead.
                ExperimentResult identity = result;
                identity.wallSeconds = 0.0;
                const JsonValue entry =
                    SweepResultWriter::entryToJson(identity);
                if (cache) {
                    cache->store(hash, requests[owner].key(),
                                 entry);
                }
                if (journal) {
                    journal->append(hash, requests[owner].key(),
                                    "executed", result.wallSeconds,
                                    entry);
                }
                ++lastStats.executed;
                resolve(hash, entry, JobSource::Executed,
                        result.wallSeconds);
                if (serviceOptions.crashAfterAppends != 0 &&
                    journal &&
                    journal->appended() >=
                        serviceOptions.crashAfterAppends) {
                    // Fault injection: vanish mid-campaign with no
                    // cleanup, exactly like a SIGKILL would.
                    std::_Exit(137);
                }
            });
    }

    if (cache)
        lastStats.quarantined = cache->quarantined();

    JsonValue runs = JsonValue::array();
    for (std::size_t i = 0; i < count; ++i)
        runs.push(std::move(entries[i]));
    JsonValue document = JsonValue::object();
    document.set("schema", kSweepSchemaV1);
    document.set("runs", std::move(runs));
    return document;
}

} // namespace pomtlb

#include "sim/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/engine.hh"
#include "sim/machine.hh"
#include "sim/scheme_registry.hh"

namespace pomtlb
{

// ---------------------------------------------------------------
// ExperimentRequest
// ---------------------------------------------------------------

ExperimentRequest
ExperimentRequest::of(std::string benchmark_name,
                      std::string scheme_name, ExperimentConfig base)
{
    ExperimentRequest request;
    request.benchmark = std::move(benchmark_name);
    // Canonicalise aliases ("pom" → "POM-TLB") so request keys and
    // emitted JSON always carry the registry's canonical name; an
    // unknown name stays verbatim for runExperiment() to reject.
    if (const SchemeRegistry::Info *info =
            SchemeRegistry::global().find(scheme_name)) {
        request.scheme = info->name;
    } else {
        request.scheme = std::move(scheme_name);
    }
    request.config = std::move(base);
    return request;
}

ExperimentRequest
ExperimentRequest::of(std::string benchmark_name,
                      SchemeKind scheme_kind, ExperimentConfig base)
{
    return of(std::move(benchmark_name),
              std::string(schemeKindName(scheme_kind)),
              std::move(base));
}

ExperimentRequest &
ExperimentRequest::withLabel(std::string value)
{
    label = std::move(value);
    return *this;
}

ExperimentRequest &
ExperimentRequest::withCores(unsigned cores)
{
    config.system.numCores = cores;
    return *this;
}

ExperimentRequest &
ExperimentRequest::withMode(ExecMode mode)
{
    config.system.mode = mode;
    return *this;
}

ExperimentRequest &
ExperimentRequest::withRefs(std::uint64_t refs_per_core,
                            std::uint64_t warmup_refs_per_core)
{
    config.engine.refsPerCore = refs_per_core;
    config.engine.warmupRefsPerCore = warmup_refs_per_core;
    return *this;
}

ExperimentRequest &
ExperimentRequest::withSeed(std::uint64_t seed)
{
    config.engine.seed = seed;
    return *this;
}

ExperimentRequest &
ExperimentRequest::withPomCapacityMb(std::uint64_t mb)
{
    config.system.pomTlb.capacityBytes = mb << 20;
    return *this;
}

ExperimentRequest &
ExperimentRequest::withSystem(const SystemConfig &system)
{
    config.system = system;
    return *this;
}

ExperimentRequest &
ExperimentRequest::withEngine(const EngineConfig &engine)
{
    config.engine = engine;
    return *this;
}

ExperimentRequest &
ExperimentRequest::withComponentStats(bool enabled)
{
    collectComponentStats = enabled;
    return *this;
}

ExperimentRequest &
ExperimentRequest::tweak(
    const std::function<void(ExperimentConfig &)> &apply)
{
    apply(config);
    return *this;
}

std::string
ExperimentRequest::key() const
{
    std::string result = benchmark;
    result += '/';
    result += scheme;
    if (!label.empty()) {
        result += '/';
        result += label;
    }
    return result;
}

// ---------------------------------------------------------------
// runExperiment
// ---------------------------------------------------------------

ExperimentResult
runExperiment(const ExperimentRequest &request)
{
    const BenchmarkProfile *profile =
        ProfileRegistry::find(request.benchmark);
    if (profile == nullptr) {
        throw std::invalid_argument("unknown benchmark '" +
                                    request.benchmark +
                                    "' in sweep request");
    }
    if (SchemeRegistry::global().find(request.scheme) == nullptr) {
        throw std::invalid_argument("unknown scheme '" +
                                    request.scheme +
                                    "' in sweep request");
    }

    const auto start = std::chrono::steady_clock::now();

    Machine machine(request.config.system, request.scheme);
    SimulationEngine engine(machine, *profile,
                            request.config.engine);

    ExperimentResult result;
    result.request = request;
    result.summary.benchmark = profile->name;
    result.summary.scheme = request.scheme;
    result.summary.mode = request.config.system.mode;
    result.summary.run = engine.run();

    SchemeRunSummary &summary = result.summary;
    const RunTotals &totals = summary.run.totals();
    summary.translationCycles = totals.translationCycles;
    summary.avgPenaltyPerMiss = totals.avgPenaltyPerMiss;
    summary.walkFraction = totals.walkFraction;
    for (unsigned core = 0; core < machine.numCores(); ++core) {
        summary.sramCycles += machine.mmu(core).totalSramCycles();
        summary.schemeCycles +=
            machine.mmu(core).totalSchemeCycles();
    }
    summary.cycleBreakdown = machine.scheme().cycleBreakdown();
    summary.l3DataHitRate =
        machine.hierarchy().l3d().hitRate(LineKind::Data);

    if (PomTlbScheme *pom = machine.pomTlbScheme()) {
        summary.pomL2CacheServiceRate = pom->l2CacheServiceRate();
        summary.pomL3CacheServiceRate = pom->l3CacheServiceRate();
        summary.pomDramServiceRate = pom->pomDramServiceRate();
        summary.sizePredictorAccuracy = pom->sizePredictorAccuracy();
        summary.bypassPredictorAccuracy =
            pom->bypassPredictorAccuracy();
        summary.dieStackedRowBufferHitRate =
            machine.pomTlbDevice()->rowBufferHitRate();
    }

    if (request.collectComponentStats)
        machine.collectStats(result.componentStats);

    result.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return result;
}

// ---------------------------------------------------------------
// SweepSpec
// ---------------------------------------------------------------

SweepSpec &
SweepSpec::withBase(ExperimentConfig config)
{
    baseConfig = std::move(config);
    return *this;
}

SweepSpec &
SweepSpec::withBenchmarks(std::vector<std::string> names)
{
    benchmarkNames = std::move(names);
    return *this;
}

SweepSpec &
SweepSpec::withAllBenchmarks()
{
    benchmarkNames = ProfileRegistry::names();
    return *this;
}

SweepSpec &
SweepSpec::withSchemes(std::vector<std::string> names)
{
    // Canonicalise aliases up front so expand()'s request keys and
    // the emitted JSON always carry canonical names.
    schemeNames.clear();
    schemeNames.reserve(names.size());
    for (std::string &name : names) {
        if (const SchemeRegistry::Info *info =
                SchemeRegistry::global().find(name)) {
            schemeNames.push_back(info->name);
        } else {
            schemeNames.push_back(std::move(name));
        }
    }
    return *this;
}

SweepSpec &
SweepSpec::withSchemes(const std::vector<SchemeKind> &kinds)
{
    std::vector<std::string> names;
    names.reserve(kinds.size());
    for (const SchemeKind kind : kinds)
        names.emplace_back(schemeKindName(kind));
    return withSchemes(std::move(names));
}

SweepSpec &
SweepSpec::withAllSchemes()
{
    schemeNames = SchemeRegistry::global().names();
    return *this;
}

SweepSpec &
SweepSpec::withVariant(std::string label,
                       std::function<void(ExperimentConfig &)> apply)
{
    configVariants.push_back({std::move(label), std::move(apply)});
    return *this;
}

SweepSpec &
SweepSpec::withComponentStats(bool enabled)
{
    componentStats = enabled;
    return *this;
}

std::size_t
SweepSpec::jobCount() const
{
    const std::size_t variants =
        configVariants.empty() ? 1 : configVariants.size();
    return benchmarkNames.size() * schemeNames.size() * variants;
}

std::vector<ExperimentRequest>
SweepSpec::expand() const
{
    std::vector<ExperimentRequest> requests;
    requests.reserve(jobCount());
    for (const std::string &benchmark : benchmarkNames) {
        for (const std::string &scheme : schemeNames) {
            if (configVariants.empty()) {
                requests.push_back(
                    ExperimentRequest::of(benchmark, scheme,
                                          baseConfig)
                        .withComponentStats(componentStats));
                continue;
            }
            for (const Variant &variant : configVariants) {
                ExperimentRequest request = ExperimentRequest::of(
                    benchmark, scheme, baseConfig);
                if (variant.apply)
                    variant.apply(request.config);
                request.withLabel(variant.label)
                    .withComponentStats(componentStats);
                requests.push_back(std::move(request));
            }
        }
    }
    return requests;
}

// ---------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------

unsigned
SweepRunner::resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    if (const char *env = std::getenv("POMTLB_SWEEP_JOBS")) {
        const long value = std::strtol(env, nullptr, 10);
        if (value > 0)
            return static_cast<unsigned>(value);
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware != 0 ? hardware : 1;
}

SweepRunner::SweepRunner(unsigned jobs)
    : workerCount(resolveJobs(jobs))
{
}

std::vector<ExperimentResult>
SweepRunner::run(const std::vector<ExperimentRequest> &requests,
                 const JobCallback &on_result) const
{
    std::vector<ExperimentResult> results(requests.size());
    if (requests.empty())
        return results;

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(workerCount, requests.size()));

    if (workers <= 1) {
        // Serial reference path: identical job code, no threads.
        for (std::size_t i = 0; i < requests.size(); ++i) {
            results[i] = runExperiment(requests[i]);
            if (on_result)
                on_result(i, results[i]);
        }
        return results;
    }

    // Work-stealing by atomic index: each worker claims the next
    // unclaimed request. results[i] is written only by the claimant
    // of i, so no locks are needed; the join is the only
    // synchronisation point the results are read across. Callback
    // invocations alone are serialised, so checkpoint/stream
    // consumers need no lock of their own.
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(requests.size());
    std::mutex callback_mutex;

    auto worker = [&] {
        while (true) {
            const std::size_t index =
                next.fetch_add(1, std::memory_order_relaxed);
            if (index >= requests.size())
                return;
            try {
                results[index] = runExperiment(requests[index]);
                if (on_result) {
                    const std::lock_guard<std::mutex> lock(
                        callback_mutex);
                    on_result(index, results[index]);
                }
            } catch (...) {
                errors[index] = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        pool.emplace_back(worker);
    for (std::thread &thread : pool)
        thread.join();

    // Deterministic error reporting: rethrow the failure of the
    // lowest-indexed request, regardless of completion order.
    for (const std::exception_ptr &error : errors)
        if (error)
            std::rethrow_exception(error);

    return results;
}

// ---------------------------------------------------------------
// SweepResultWriter
// ---------------------------------------------------------------

namespace
{

JsonValue
summaryToJson(const SchemeRunSummary &summary)
{
    JsonValue object = JsonValue::object();
    object.set("translation_cycles", summary.translationCycles);
    object.set("sram_cycles", summary.sramCycles);
    object.set("scheme_cycles", summary.schemeCycles);
    JsonValue breakdown = JsonValue::object();
    for (const auto &[point, cycles] : summary.cycleBreakdown)
        breakdown.set(servicePointName(point), cycles);
    object.set("cycle_breakdown", std::move(breakdown));
    object.set("avg_penalty_per_miss", summary.avgPenaltyPerMiss);
    object.set("walk_fraction", summary.walkFraction);
    const RunTotals &totals = summary.run.totals();
    object.set("refs", totals.refs);
    object.set("last_level_misses", totals.lastLevelMisses);
    object.set("page_walks", totals.pageWalks);
    object.set("shootdowns", totals.shootdowns);
    object.set("pom_l2_cache_service_rate",
               summary.pomL2CacheServiceRate);
    object.set("pom_l3_cache_service_rate",
               summary.pomL3CacheServiceRate);
    object.set("pom_dram_service_rate", summary.pomDramServiceRate);
    object.set("size_predictor_accuracy",
               summary.sizePredictorAccuracy);
    object.set("bypass_predictor_accuracy",
               summary.bypassPredictorAccuracy);
    object.set("die_stacked_row_buffer_hit_rate",
               summary.dieStackedRowBufferHitRate);
    object.set("l3_data_hit_rate", summary.l3DataHitRate);
    return object;
}

} // namespace

JsonValue
SweepResultWriter::entryToJson(const ExperimentResult &result)
{
    JsonValue entry = JsonValue::object();
    entry.set("benchmark", result.request.benchmark);
    entry.set("scheme", result.request.scheme);
    entry.set("label", result.request.label);
    entry.set("mode",
              execModeName(result.request.config.system.mode));
    entry.set("cores", std::uint64_t(
                           result.request.config.system.numCores));
    entry.set("pom_capacity_bytes",
              result.request.config.system.pomTlb.capacityBytes);
    entry.set("refs_per_core",
              result.request.config.engine.refsPerCore);
    entry.set("warmup_refs_per_core",
              result.request.config.engine.warmupRefsPerCore);
    entry.set("seed", result.request.config.engine.seed);
    entry.set("wall_seconds", result.wallSeconds);
    entry.set("summary", summaryToJson(result.summary));
    if (!result.componentStats.empty()) {
        JsonValue stats = JsonValue::object();
        for (const auto &stat : result.componentStats)
            stats.set(stat.first, stat.second);
        entry.set("component_stats", std::move(stats));
    }
    return entry;
}

JsonValue
SweepResultWriter::toJson(const std::vector<ExperimentResult> &results)
{
    JsonValue runs = JsonValue::array();
    for (const ExperimentResult &result : results)
        runs.push(entryToJson(result));

    JsonValue document = JsonValue::object();
    document.set("schema", kSweepSchemaV1);
    document.set("runs", std::move(runs));
    return document;
}

void
SweepResultWriter::write(std::ostream &os,
                         const std::vector<ExperimentResult> &results)
{
    toJson(results).write(os);
    os << "\n";
}

ExperimentResult
SweepResultWriter::entryFromJson(const JsonValue &entry)
{
    ExperimentResult result;
    result.request.benchmark = entry.at("benchmark").asString();
    const SchemeRegistry::Info *scheme =
        SchemeRegistry::global().find(
            entry.at("scheme").asString());
    if (scheme == nullptr) {
        throw std::invalid_argument(
            "unknown scheme in sweep document: " +
            entry.at("scheme").asString());
    }
    result.request.scheme = scheme->name;
    result.request.label = entry.at("label").asString();
    result.request.config.system.mode =
        entry.at("mode").asString() == "native"
            ? ExecMode::Native
            : ExecMode::Virtualized;
    result.request.config.system.numCores =
        static_cast<unsigned>(entry.at("cores").asUint());
    result.request.config.system.pomTlb.capacityBytes =
        entry.at("pom_capacity_bytes").asUint();
    result.request.config.engine.refsPerCore =
        entry.at("refs_per_core").asUint();
    result.request.config.engine.warmupRefsPerCore =
        entry.at("warmup_refs_per_core").asUint();
    result.request.config.engine.seed =
        entry.at("seed").asUint();
    result.wallSeconds = entry.at("wall_seconds").asNumber();

    const JsonValue &summary = entry.at("summary");
    SchemeRunSummary &out = result.summary;
    out.benchmark = result.request.benchmark;
    out.scheme = result.request.scheme;
    out.mode = result.request.config.system.mode;
    out.translationCycles =
        summary.at("translation_cycles").asUint();
    // Optional so pre-observability documents still load.
    if (summary.has("sram_cycles"))
        out.sramCycles = summary.at("sram_cycles").asUint();
    if (summary.has("scheme_cycles"))
        out.schemeCycles = summary.at("scheme_cycles").asUint();
    if (summary.has("cycle_breakdown")) {
        for (const auto &[name, cycles] :
             summary.at("cycle_breakdown").members()) {
            const auto point = servicePointFromName(name);
            if (!point) {
                throw std::invalid_argument(
                    "unknown service point in sweep document: " +
                    name);
            }
            out.cycleBreakdown.emplace_back(*point,
                                            cycles.asUint());
        }
    }
    // The JSON stores machine-wide totals, not the per-core
    // breakdown; reconstruct them as one aggregate pseudo-core
    // so RunResult::totals() (and a re-serialisation) reproduces
    // the written values.
    CoreRunStats aggregate;
    aggregate.refs = summary.at("refs").asUint();
    aggregate.translationCycles = out.translationCycles;
    aggregate.lastLevelTlbMisses =
        summary.at("last_level_misses").asUint();
    aggregate.pageWalks = summary.at("page_walks").asUint();
    aggregate.shootdowns = summary.at("shootdowns").asUint();
    out.run.cores.push_back(aggregate);
    out.avgPenaltyPerMiss =
        summary.at("avg_penalty_per_miss").asNumber();
    out.walkFraction = summary.at("walk_fraction").asNumber();
    out.pomL2CacheServiceRate =
        summary.at("pom_l2_cache_service_rate").asNumber();
    out.pomL3CacheServiceRate =
        summary.at("pom_l3_cache_service_rate").asNumber();
    out.pomDramServiceRate =
        summary.at("pom_dram_service_rate").asNumber();
    out.sizePredictorAccuracy =
        summary.at("size_predictor_accuracy").asNumber();
    out.bypassPredictorAccuracy =
        summary.at("bypass_predictor_accuracy").asNumber();
    out.dieStackedRowBufferHitRate =
        summary.at("die_stacked_row_buffer_hit_rate").asNumber();
    out.l3DataHitRate =
        summary.at("l3_data_hit_rate").asNumber();

    if (entry.has("component_stats")) {
        for (const auto &stat :
             entry.at("component_stats").members()) {
            result.componentStats.emplace_back(
                stat.first, stat.second.asNumber());
        }
    }
    return result;
}

std::vector<ExperimentResult>
SweepResultWriter::fromJson(const JsonValue &document)
{
    if (!document.isObject() || !document.has("schema") ||
        document.at("schema").asString() != kSweepSchemaV1) {
        throw std::invalid_argument(
            "not a pomtlb-sweep-v1 document");
    }

    std::vector<ExperimentResult> results;
    for (const JsonValue &entry : document.at("runs").elements())
        results.push_back(entryFromJson(entry));
    return results;
}

} // namespace pomtlb

/**
 * @file
 * The parallel experiment-sweep subsystem.
 *
 * A sweep is a declarative cross product — benchmarks × schemes ×
 * config variants — expanded into ExperimentRequest jobs and executed
 * on a bounded worker pool. Each job constructs its own Machine +
 * SimulationEngine, so the simulator core stays single-threaded by
 * design: no lock ever guards simulation state, the isolation unit is
 * the whole machine. Results always come back in spec order,
 * bit-identical to a serial run (tests/test_sweep.cc enforces this).
 *
 * Layers:
 *  - ExperimentRequest / ExperimentResult — value types describing
 *    one run and its outcome, with a fluent builder for overrides;
 *  - SweepSpec — the declarative cross product, expand()ed to
 *    requests;
 *  - SweepRunner — the worker pool;
 *  - SweepResultWriter — JSON serialisation for
 *    scripts/plot_results.py, round-trippable through
 *    SweepResultWriter::fromJson.
 */

#ifndef POMTLB_SIM_SWEEP_HH
#define POMTLB_SIM_SWEEP_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "sim/experiment.hh"

namespace pomtlb
{

/** Schema identifier written into every sweep-result document. */
inline constexpr const char *kSweepSchemaV1 = "pomtlb-sweep-v1";

/**
 * One experiment to run: a benchmark under a scheme with a fully
 * resolved configuration. Build directly or through the fluent
 * with*() chain:
 *
 *     auto request = ExperimentRequest::of("mcf", "POM-TLB")
 *                        .withCores(16)
 *                        .withPomCapacityMb(32)
 *                        .withLabel("32MB");
 */
struct ExperimentRequest
{
    std::string benchmark; /**< Workload-model name ("mcf", ...). */
    /** Registry name of the scheme to run (canonicalised by of()). */
    std::string scheme = "Baseline";
    ExperimentConfig config; /**< Fully resolved configuration. */
    /** Variant tag for reports ("" when the sweep has no variants). */
    std::string label;
    /** Attach per-component StatGroup output to the result. */
    bool collectComponentStats = false;

    /**
     * Start a request from a base configuration. Accepts any
     * registry name or alias and canonicalises it; an unknown name
     * is kept verbatim and rejected later by runExperiment().
     */
    static ExperimentRequest
    of(std::string benchmark_name, std::string scheme_name,
       ExperimentConfig base = ExperimentConfig{});

    /**
     * Legacy-enum overload of of().
     * @deprecated Pass the registry scheme name instead; the
     *             shim will be removed with SchemeKind.
     */
    static ExperimentRequest
    of(std::string benchmark_name, SchemeKind scheme_kind,
       ExperimentConfig base = ExperimentConfig{});

    // Fluent overrides (each returns *this for chaining).
    /** Set the variant tag. */
    ExperimentRequest &withLabel(std::string value);
    /** Override the simulated core count. */
    ExperimentRequest &withCores(unsigned cores);
    /** Override native/virtualized execution mode. */
    ExperimentRequest &withMode(ExecMode mode);
    /** Override measured and warmup references per core. */
    ExperimentRequest &withRefs(std::uint64_t refs_per_core,
                                std::uint64_t warmup_refs_per_core);
    /** Override the RNG seed every stream forks from. */
    ExperimentRequest &withSeed(std::uint64_t seed);
    /** Override the POM-TLB capacity, in megabytes. */
    ExperimentRequest &withPomCapacityMb(std::uint64_t mb);
    /** Replace the whole system configuration. */
    ExperimentRequest &withSystem(const SystemConfig &system);
    /** Replace the whole engine configuration. */
    ExperimentRequest &withEngine(const EngineConfig &engine);
    /** Request per-component stats in the result. */
    ExperimentRequest &withComponentStats(bool enabled = true);
    /** Escape hatch: arbitrary in-place config adjustment. */
    ExperimentRequest &
    tweak(const std::function<void(ExperimentConfig &)> &apply);

    /** "benchmark/scheme[/label]" identity string for reports. */
    std::string key() const;
};

/** The outcome of one ExperimentRequest. */
struct ExperimentResult
{
    ExperimentRequest request; /**< The request that produced this. */
    SchemeRunSummary summary;  /**< Scheme-level run summary. */
    /**
     * Per-component statistics (StatGroup::collect over the whole
     * machine); empty unless the request asked for them.
     */
    std::vector<std::pair<std::string, double>> componentStats;
    /** Host wall-clock seconds this job took (not simulated time). */
    double wallSeconds = 0.0;
};

/**
 * Run one request synchronously on the calling thread. Throws
 * std::invalid_argument for an unknown benchmark or scheme name —
 * the two user-input errors a sweep job can hit; configuration
 * errors still fatal() like everywhere else in the simulator.
 */
ExperimentResult runExperiment(const ExperimentRequest &request);

/**
 * A declarative sweep: benchmarks × schemes × config variants.
 * expand() produces the cross product in benchmark-major order
 * (benchmark, then scheme, then variant), which is also the order
 * SweepRunner returns results in.
 */
class SweepSpec
{
  public:
    /** Named configuration override applied on top of the base. */
    struct Variant
    {
        std::string label; /**< Tag appended to each request key. */
        std::function<void(ExperimentConfig &)> apply; /**< Override. */
    };

    /** Set the base configuration every request starts from. */
    SweepSpec &withBase(ExperimentConfig config);
    /** Set the benchmark axis. */
    SweepSpec &withBenchmarks(std::vector<std::string> names);
    /** All fifteen Table 2 workloads. */
    SweepSpec &withAllBenchmarks();
    /** Set the scheme axis by registry name (aliases accepted). */
    SweepSpec &withSchemes(std::vector<std::string> names);
    /**
     * Legacy-enum overload of withSchemes().
     * @deprecated Pass registry scheme names instead; the shim
     *             will be removed with SchemeKind.
     */
    SweepSpec &withSchemes(const std::vector<SchemeKind> &kinds);
    /**
     * Every registered scheme: the paper's four in Figure 8 order,
     * then contenders in registration (rank) order.
     */
    SweepSpec &withAllSchemes();
    /** Add one labelled config variant to the variant axis. */
    SweepSpec &withVariant(
        std::string label,
        std::function<void(ExperimentConfig &)> apply);
    /** Request per-component stats on every expanded request. */
    SweepSpec &withComponentStats(bool enabled = true);

    /** The base configuration. */
    const ExperimentConfig &base() const { return baseConfig; }
    /** The benchmark axis. */
    const std::vector<std::string> &benchmarks() const
    {
        return benchmarkNames;
    }
    /** The scheme axis (canonical registry names). */
    const std::vector<std::string> &schemes() const
    {
        return schemeNames;
    }
    /** The variant axis. */
    const std::vector<Variant> &variants() const
    {
        return configVariants;
    }

    /** Number of requests expand() will produce. */
    std::size_t jobCount() const;

    /** The cross product, in deterministic spec order. */
    std::vector<ExperimentRequest> expand() const;

  private:
    ExperimentConfig baseConfig;
    std::vector<std::string> benchmarkNames;
    std::vector<std::string> schemeNames;
    std::vector<Variant> configVariants;
    bool componentStats = false;
};

/**
 * Executes ExperimentRequests on a bounded pool of worker threads.
 *
 * Guarantees:
 *  - results[i] always corresponds to requests[i] (completion order
 *    never leaks into the output);
 *  - every summary is bit-identical to what a serial run produces
 *    (jobs share no mutable state — one Machine per job);
 *  - if jobs throw, the workers drain and the exception of the
 *    lowest-indexed failing request is rethrown, so error reporting
 *    is deterministic too.
 */
class SweepRunner
{
  public:
    /**
     * @param jobs  Worker threads. 1 = run serially on the calling
     *              thread; 0 = hardware concurrency (capped by the
     *              number of requests either way).
     */
    explicit SweepRunner(unsigned jobs = 1);

    /** The resolved worker count (never 0). */
    unsigned jobs() const { return workerCount; }

    /**
     * Invoked as each job finishes, in *completion* order (the
     * result vector stays in request order regardless). Calls are
     * serialised by the runner, so the callback may touch shared
     * state (journals, sockets) without its own lock; it must not
     * throw. This is the hook the sweep-at-scale service
     * (sim/sweep_cache.hh) uses to checkpoint and stream results.
     */
    using JobCallback =
        std::function<void(std::size_t index,
                           const ExperimentResult &result)>;

    /** Run every request; results land in request order. */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentRequest> &requests) const
    {
        return run(requests, JobCallback());
    }

    /** run() with a serialised per-completion callback. */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentRequest> &requests,
        const JobCallback &on_result) const;

    /** Expand a spec and run it. */
    std::vector<ExperimentResult> run(const SweepSpec &spec) const
    {
        return run(spec.expand());
    }

    /**
     * Resolve a requested job count: 0 consults POMTLB_SWEEP_JOBS,
     * then std::thread::hardware_concurrency(), then falls back
     * to 1.
     */
    static unsigned resolveJobs(unsigned requested);

  private:
    unsigned workerCount;
};

/**
 * Serialises sweep results to JSON (schema documented in
 * docs/internals.md). The reader reconstructs the identity fields
 * and every summary statistic — enough for plotting and regression
 * diffing; the full ExperimentConfig is summarised, not embedded.
 */
class SweepResultWriter
{
  public:
    /** Build the `pomtlb-sweep-v1` document for @p results. */
    static JsonValue
    toJson(const std::vector<ExperimentResult> &results);

    /**
     * One `runs[]` entry of the `pomtlb-sweep-v1` document. The
     * sweep-result cache stores exactly this object per job, so a
     * cached job replays byte-identically into the document.
     */
    static JsonValue entryToJson(const ExperimentResult &result);

    /** Inverse of entryToJson for the round-trippable subset. */
    static ExperimentResult entryFromJson(const JsonValue &entry);

    /** Pretty-printed JSON document, trailing newline included. */
    static void write(std::ostream &os,
                      const std::vector<ExperimentResult> &results);

    /** Inverse of toJson for the round-trippable subset. */
    static std::vector<ExperimentResult>
    fromJson(const JsonValue &document);
};

} // namespace pomtlb

#endif // POMTLB_SIM_SWEEP_HH

#include "sim/engine.hh"

#include <algorithm>
#include <unordered_set>

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pomtlb
{

std::uint64_t
RunResult::totalTranslationCycles() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores)
        total += core.translationCycles;
    return total;
}

std::uint64_t
RunResult::totalLastLevelMisses() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores)
        total += core.lastLevelTlbMisses;
    return total;
}

std::uint64_t
RunResult::totalRefs() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores)
        total += core.refs;
    return total;
}

std::uint64_t
RunResult::totalPageWalks() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores)
        total += core.pageWalks;
    return total;
}

std::uint64_t
RunResult::totalShootdowns() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores)
        total += core.shootdowns;
    return total;
}

double
RunResult::avgPenaltyPerMiss() const
{
    double weighted = 0.0;
    std::uint64_t misses = 0;
    for (const auto &core : cores) {
        weighted += core.avgPenaltyPerMiss *
                    static_cast<double>(core.lastLevelTlbMisses);
        misses += core.lastLevelTlbMisses;
    }
    return misses ? weighted / static_cast<double>(misses) : 0.0;
}

double
RunResult::walkFraction() const
{
    const std::uint64_t misses = totalLastLevelMisses();
    return misses ? static_cast<double>(totalPageWalks()) /
                        static_cast<double>(misses)
                  : 0.0;
}

SimulationEngine::SimulationEngine(Machine &machine_ref,
                                   const BenchmarkProfile &bench,
                                   const EngineConfig &config)
    : machine(machine_ref), profile(bench), engineConfig(config)
{
    const unsigned cores = machine.numCores();

    coreVm = config.coreVm;
    coreVm.resize(cores, coreVm.empty() ? VmId{1} : coreVm.back());

    const std::uint64_t seed =
        config.seed ^ machine.config().seed;
    sources.reserve(cores);
    for (unsigned core = 0; core < cores; ++core) {
        sources.push_back(
            std::make_unique<GeneratorSource>(profile, core, seed));
    }
    instructions.assign(cores, 0);
    pageWalks.assign(cores, 0);
    shootdowns.assign(cores, 0);
}

SimulationEngine::SimulationEngine(
    Machine &machine_ref, const BenchmarkProfile &bench,
    const EngineConfig &config,
    std::vector<std::unique_ptr<TraceSource>> trace_sources)
    : machine(machine_ref), profile(bench), engineConfig(config),
      sources(std::move(trace_sources))
{
    const unsigned cores = machine.numCores();
    simAssert(sources.size() == cores,
              "need exactly one trace source per core");
    coreVm = config.coreVm;
    coreVm.resize(cores, coreVm.empty() ? VmId{1} : coreVm.back());
    instructions.assign(cores, 0);
    pageWalks.assign(cores, 0);
    shootdowns.assign(cores, 0);
}

void
SimulationEngine::step(std::vector<Cycles> &clocks,
                       std::vector<std::uint64_t> &refs_done,
                       std::uint64_t target_refs)
{
    // Advance the core that is earliest in simulated time and still
    // has references to issue.
    unsigned core = 0;
    bool found = false;
    Cycles best = 0;
    for (unsigned c = 0; c < clocks.size(); ++c) {
        if (refs_done[c] >= target_refs)
            continue;
        if (!found || clocks[c] < best) {
            best = clocks[c];
            core = c;
            found = true;
        }
    }
    simAssert(found, "step() called with all cores finished");

    const TraceRecord record = sources[core]->next();
    const VmId vm = coreVm[core];
    // Multithreaded workloads share one address space (one pid);
    // rate-mode copies each run as their own process.
    const ProcessId pid = static_cast<ProcessId>(
        profile.multithreaded ? engineConfig.pidBase
                              : engineConfig.pidBase + core);

    // Non-memory instructions retire at one per cycle.
    clocks[core] += record.instGap;
    instructions[core] += record.instGap + 1;

    const MmuResult translation = machine.mmu(core).translate(
        record.vaddr, record.pageSize, vm, pid, clocks[core]);
    clocks[core] += translation.cycles;
    if (translation.walked)
        ++pageWalks[core];

    const HierarchyAccessResult data = machine.hierarchy().accessData(
        core, translation.hpa, record.type, clocks[core]);
    clocks[core] += data.latency;

    // Periodic TLB shootdowns (disabled by default).
    if (engineConfig.shootdownIntervalRefs > 0 &&
        ++refsSinceShootdown >= engineConfig.shootdownIntervalRefs) {
        refsSinceShootdown = 0;
        machine.shootdownPage(record.vaddr, record.pageSize, vm, pid);
        clocks[core] += engineConfig.shootdownCycles;
        ++shootdowns[core];
    }

    ++refs_done[core];
}

void
SimulationEngine::prepopulate()
{
    const unsigned cores = machine.numCores();
    const std::uint64_t per_core = engineConfig.warmupRefsPerCore +
                                   engineConfig.refsPerCore;

    std::unordered_set<std::uint64_t> seen;
    for (unsigned core = 0; core < cores; ++core) {
        // Replay exactly the stream the timed run will issue, then
        // rewind the source for the real run.
        TraceSource &dry = *sources[core];
        dry.rewind();
        const VmId vm = coreVm[core];
        const ProcessId pid = static_cast<ProcessId>(
            profile.multithreaded ? engineConfig.pidBase
                                  : engineConfig.pidBase + core);
        for (std::uint64_t i = 0; i < per_core; ++i) {
            const TraceRecord record = dry.next();
            const Addr page = pageBase(record.vaddr, record.pageSize);
            // Dedup key covers (page, pid, vm): the same page may
            // need separate entries per process and per VM.
            const std::uint64_t key =
                mix64(page) ^
                mix64((static_cast<std::uint64_t>(pid) << 16) | vm);
            if (!seen.insert(key).second)
                continue;
            const TranslationInfo info = machine.memoryMap().ensureMapped(
                vm, pid, record.vaddr, record.pageSize);
            machine.scheme().prewarm(
                core, record.vaddr, record.pageSize, vm, pid,
                info.hpa >> pageShift(record.pageSize));
        }
        dry.rewind();
    }
}

RunResult
SimulationEngine::run()
{
    const unsigned cores = machine.numCores();
    std::vector<Cycles> clocks(cores, 0);
    std::vector<std::uint64_t> refs_done(cores, 0);

    if (engineConfig.prepopulate)
        prepopulate();

    // Warmup: populate TLBs, caches, page tables, POM-TLB.
    const std::uint64_t warmup = engineConfig.warmupRefsPerCore;
    if (warmup > 0) {
        std::uint64_t remaining =
            static_cast<std::uint64_t>(cores) * warmup;
        while (remaining--)
            step(clocks, refs_done, warmup);
        machine.resetStats();
        std::fill(instructions.begin(), instructions.end(), 0);
        std::fill(pageWalks.begin(), pageWalks.end(), 0);
        std::fill(shootdowns.begin(), shootdowns.end(), 0);
    }

    // Measured phase.
    const std::uint64_t target =
        warmup + engineConfig.refsPerCore;
    std::vector<Cycles> start_clocks = clocks;
    std::uint64_t remaining =
        static_cast<std::uint64_t>(cores) * engineConfig.refsPerCore;
    while (remaining--)
        step(clocks, refs_done, target);

    RunResult result;
    result.cores.resize(cores);
    for (unsigned core = 0; core < cores; ++core) {
        CoreRunStats &stats = result.cores[core];
        const Mmu &mmu = machine.mmu(core);
        stats.refs = engineConfig.refsPerCore;
        stats.instructions = instructions[core];
        stats.cycles = clocks[core] - start_clocks[core];
        stats.translationCycles = mmu.totalTranslationCycles();
        stats.l1TlbHits = mmu.l1HitCount();
        stats.l2TlbHits = mmu.l2HitCount();
        stats.lastLevelTlbMisses = mmu.lastLevelMissCount();
        stats.avgPenaltyPerMiss = mmu.avgPenaltyPerMiss();
        stats.pageWalks = pageWalks[core];
        stats.shootdowns = shootdowns[core];
    }
    return result;
}

} // namespace pomtlb

#include "sim/engine.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/hash_set.hh"
#include "common/log.hh"
#include "sim/clock_heap.hh"
#include "sim/shard.hh"
#include "trace/tracepack.hh"

namespace pomtlb
{

namespace
{

/**
 * Records fetched per TraceSource::fill() when streaming directly
 * from a source (16 KB of records per core — small enough to stay
 * cache-resident, large enough to amortise the virtual call).
 */
constexpr std::uint64_t streamBlockRecords = 1024;

/**
 * Pre-population captures the trace for replay unless a core's
 * stream exceeds this many records (4 Mi records = 64 MB per core);
 * longer runs fall back to re-generating the stream, trading
 * generator time for bounded memory.
 */
constexpr std::uint64_t replayCapRecords = std::uint64_t{1} << 22;

/**
 * Default simulated-cycle length of one sharded-execution epoch
 * (EngineConfig::epochCycles == 0). Long enough that a barrier's
 * synchronization cost is amortized over hundreds of references per
 * core, short enough that the prefill buffers stay a small multiple
 * of the per-core working block.
 */
constexpr Cycles defaultEpochCycles = 8192;

/**
 * One first-touch page emitted by a sharded pre-population scan:
 * everything the serial install loop needs, in the order the owning
 * stream first touched it.
 */
struct PrepopPage
{
    std::uint64_t key = 0;
    Addr vaddr = 0;
    PageSize pageSize = PageSize::Small4K;
};

} // namespace

/**
 * Sharded-execution state: the worker pool plus each core's
 * prefilled next trace block (streaming mode only — capture mode
 * replays zero-copy slices and needs no prefill).
 */
struct SimulationEngine::Shard
{
    explicit Shard(unsigned threads) : pool(threads) {}

    ShardPool pool;
    /** Per-core prefilled next block, swapped in by refill(). */
    std::vector<std::vector<TraceRecord>> next;
    /** Valid records in next[core]; 0 = drained (refill-eligible). */
    std::vector<std::size_t> nextLen;
    /** Sources that returned short on prefill — stop asking. */
    std::vector<std::uint8_t> exhausted;
    /** Scratch list of cores to prefill this barrier (no allocs). */
    std::vector<std::uint32_t> batch;
    /** Barriers taken across all phases (diagnostics only). */
    std::uint64_t epochs = 0;
};

const RunTotals &
RunResult::totals() const
{
    if (cachedValid)
        return cached;

    RunTotals totals;
    double weighted_penalty = 0.0;
    for (const CoreRunStats &core : cores) {
        totals.refs += core.refs;
        totals.instructions += core.instructions;
        totals.cycles += core.cycles;
        totals.translationCycles += core.translationCycles;
        totals.l1TlbHits += core.l1TlbHits;
        totals.l2TlbHits += core.l2TlbHits;
        totals.lastLevelMisses += core.lastLevelTlbMisses;
        totals.pageWalks += core.pageWalks;
        totals.shootdowns += core.shootdowns;
        weighted_penalty += core.avgPenaltyPerMiss *
                            static_cast<double>(core.lastLevelTlbMisses);
    }
    totals.avgPenaltyPerMiss =
        totals.lastLevelMisses
            ? weighted_penalty /
                  static_cast<double>(totals.lastLevelMisses)
            : 0.0;
    totals.walkFraction =
        totals.lastLevelMisses
            ? static_cast<double>(totals.pageWalks) /
                  static_cast<double>(totals.lastLevelMisses)
            : 0.0;

    cached = totals;
    cachedValid = true;
    return cached;
}

SimulationEngine::SimulationEngine(Machine &machine_ref,
                                   const BenchmarkProfile &bench,
                                   const EngineConfig &config)
    : machine(machine_ref), profile(bench), engineConfig(config)
{
    const unsigned cores = machine.numCores();
    sources.reserve(cores);
    if (!config.tracePackPath.empty()) {
        // Replay a recorded pack instead of generating: one shared
        // mmap-ed reader, core c on stream c % stream_count.
        auto pack = std::make_shared<TracePackReader>(
            config.tracePackPath);
        // A sharded run fans the shared reader out to worker
        // threads, so retire the lazy per-chunk verification (which
        // writes a mutable flag cache) up front.
        if (config.runThreads > 0)
            pack->verifyAllChunks();
        for (unsigned core = 0; core < cores; ++core) {
            sources.push_back(std::make_unique<PackStreamSource>(
                pack, core % pack->streamCount()));
        }
    } else {
        const std::uint64_t seed =
            config.seed ^ machine.config().seed;
        for (unsigned core = 0; core < cores; ++core) {
            sources.push_back(std::make_unique<GeneratorSource>(
                profile, core, seed));
        }
    }
    initCores();
}

SimulationEngine::SimulationEngine(
    Machine &machine_ref, const BenchmarkProfile &bench,
    const EngineConfig &config,
    std::vector<std::unique_ptr<TraceSource>> trace_sources)
    : machine(machine_ref), profile(bench), engineConfig(config),
      sources(std::move(trace_sources))
{
    simAssert(sources.size() == machine.numCores(),
              "need exactly one trace source per core");
    initCores();
}

SimulationEngine::~SimulationEngine() = default;

void
SimulationEngine::initCores()
{
    const unsigned cores = machine.numCores();
    if (engineConfig.runThreads > 0) {
        shard = std::make_unique<Shard>(engineConfig.runThreads);
        shard->next.resize(cores);
        for (std::vector<TraceRecord> &block : shard->next)
            block.resize(streamBlockRecords);
        shard->nextLen.assign(cores, 0);
        shard->exhausted.assign(cores, 0);
    }
    coreVm = engineConfig.coreVm;
    coreVm.resize(cores, coreVm.empty() ? VmId{1} : coreVm.back());
    // Multithreaded workloads share one address space (one pid);
    // rate-mode copies each run as their own process.
    corePid.resize(cores);
    for (unsigned core = 0; core < cores; ++core) {
        corePid[core] = static_cast<ProcessId>(
            profile.multithreaded ? engineConfig.pidBase
                                  : engineConfig.pidBase + core);
    }
}

void
SimulationEngine::refill(Lane &lane, unsigned core)
{
    if (!replay.empty()) {
        // Replay mode: the block is a zero-copy slice of the captured
        // stream, extended to everything not yet consumed — a lane
        // refills at most once per phase.
        const std::vector<TraceRecord> &records = replay[core];
        simAssert(lane.consumed < records.size(),
                  "captured trace exhausted");
        lane.block = records.data() + lane.consumed;
        lane.blockPos = 0;
        lane.blockLen = records.size() - lane.consumed;
        return;
    }
    if (shard && shard->nextLen[core] > 0) {
        // Sharded streaming: swap in the block the workers prefilled
        // at the last epoch barrier. The records are the very ones a
        // synchronous fill() would have produced (each source is
        // only ever advanced in stream order, by exactly one
        // thread at a time), so consumption is unchanged.
        lane.scratch.swap(shard->next[core]);
        lane.block = lane.scratch.data();
        lane.blockPos = 0;
        lane.blockLen = shard->nextLen[core];
        shard->nextLen[core] = 0;
        return;
    }
    // Serial mode — or a sharded lane that outran its prefill before
    // the next barrier. The pool is idle outside barriers, so the
    // coordinator may touch the source directly.
    const std::size_t got = sources[core]->fill(
        lane.scratch.data(), lane.scratch.size());
    simAssert(got > 0, "trace source exhausted");
    lane.block = lane.scratch.data();
    lane.blockPos = 0;
    lane.blockLen = got;
}

void
SimulationEngine::prefillBlocks()
{
    // Collect every drained prefill slot, then fill them in one
    // parallel batch; each job touches only its own core's source
    // and buffer. Slots still holding records are left alone — a
    // lane's live block may alias its previously swapped buffer.
    std::vector<std::uint32_t> &batch = shard->batch;
    batch.clear();
    for (std::uint32_t core = 0; core < shard->next.size(); ++core) {
        if (shard->nextLen[core] == 0 && !shard->exhausted[core])
            batch.push_back(core);
    }
    shard->pool.forEach(batch.size(), [this](std::size_t i) {
        const std::uint32_t core = shard->batch[i];
        std::vector<TraceRecord> &block = shard->next[core];
        const std::size_t got =
            sources[core]->fill(block.data(), block.size());
        shard->nextLen[core] = got;
        if (got == 0) {
            // Finite source ran dry while reading ahead: not an
            // error unless a lane actually demands more records,
            // which the synchronous refill() path diagnoses.
            shard->exhausted[core] = 1;
        }
    });
}

void
SimulationEngine::runPhase(std::vector<Lane> &lanes,
                           std::uint64_t target)
{
    if (target == 0)
        return;

    DataHierarchy &hierarchy = machine.hierarchy();
    const std::uint64_t interval = engineConfig.shootdownIntervalRefs;

    // Seed the scheduler with every lane's current clock. The heap
    // root is always the lexicographic minimum of (clock, core), so
    // lanes advance in exactly the order the old per-step linear
    // scan produced.
    ClockHeap heap;
    heap.reset(lanes.size());
    for (std::uint32_t core = 0; core < lanes.size(); ++core) {
        lanes[core].phaseDone = 0;
        heap.push(lanes[core].clock, core);
    }

    // Sharded streaming mode chops the run into epochs of simulated
    // cycles. The heap already drains references in global (clock,
    // core) order, so when the earliest lane crosses the horizon,
    // every cross-core effect below it has been applied — that point
    // is the epoch barrier, where the workers prefill the next round
    // of trace blocks in parallel. The barrier changes *when* pure
    // work happens, never what the simulation computes, so results
    // are independent of the epoch length (and of thread count);
    // tests/test_shard_stress.cc hammers exactly that invariant.
    // Capture-replay lanes stream zero-copy slices and need no
    // barriers at all.
    const bool stream_shard = shard != nullptr && replay.empty();
    const Cycles epoch_len = engineConfig.epochCycles
                                 ? engineConfig.epochCycles
                                 : defaultEpochCycles;
    Cycles epoch_end = 0;
    if (stream_shard) {
        prefillBlocks();
        epoch_end = heap.topKey() + epoch_len;
    }

    while (!heap.empty()) {
        if (stream_shard && heap.topKey() >= epoch_end) {
            prefillBlocks();
            ++shard->epochs;
            epoch_end = heap.topKey() + epoch_len;
        }
        const std::uint32_t core = heap.topId();
        Lane &lane = lanes[core];
        Mmu &mmu = *lane.mmu;
        const VmId vm = lane.vm;
        const ProcessId pid = lane.pid;
        Cycles clock = lane.clock;

        // Run this lane until it either finishes the phase or stops
        // being globally earliest; only then touch the heap.
        for (;;) {
            if (lane.blockPos == lane.blockLen)
                refill(lane, core);
            const TraceRecord &record = lane.block[lane.blockPos++];
            ++lane.consumed;

            // Non-memory instructions retire at one per cycle.
            clock += record.instGap;
            lane.instructions += record.instGap + 1;

            const MmuResult translation = mmu.translate(
                record.vaddr, record.pageSize, vm, pid, clock);
            clock += translation.cycles;
            lane.pageWalks += translation.walked ? 1 : 0;

            const HierarchyAccessResult data = hierarchy.accessData(
                core, translation.hpa, record.type, clock);
            clock += data.latency;

            // Periodic TLB shootdowns (disabled by default).
            if (interval > 0 &&
                ++refsSinceShootdown >= interval) {
                refsSinceShootdown = 0;
                machine.shootdownPage(record.vaddr, record.pageSize,
                                      vm, pid);
                clock += engineConfig.shootdownCycles;
                ++lane.shootdowns;
            }

            if (++lane.phaseDone == target) {
                lane.clock = clock;
                heap.popTop();
                break;
            }
            if (!heap.staysTop(clock, core)) {
                lane.clock = clock;
                heap.replaceTop(clock);
                break;
            }
        }
    }
}

void
SimulationEngine::prepopulate()
{
    if (shard) {
        prepopulateSharded();
        return;
    }
    const unsigned cores = machine.numCores();
    const std::uint64_t per_core =
        engineConfig.warmupRefsPerCore + engineConfig.refsPerCore;

    // Capture the stream while enumerating it so the timed run can
    // replay the records instead of re-generating them.
    const bool capture = per_core <= replayCapRecords;
    replay.clear();
    if (capture)
        replay.resize(cores);

    MemoryMap &map = machine.memoryMap();
    U64Set seen(std::size_t{1} << 16);
    std::vector<TraceRecord> chunk;
    if (!capture)
        chunk.resize(streamBlockRecords);

    for (unsigned core = 0; core < cores; ++core) {
        // Replay exactly the stream the timed run will issue.
        TraceSource &dry = *sources[core];
        dry.rewind();
        const VmId vm = coreVm[core];
        const ProcessId pid = corePid[core];
        // Dedup key covers (page, pid, vm): the same page may need
        // separate entries per process and per VM.
        const std::uint64_t space_key =
            mix64((static_cast<std::uint64_t>(pid) << 16) | vm);

        if (capture)
            replay[core].resize(per_core);

        std::uint64_t done = 0;
        std::uint64_t last_key = ~std::uint64_t{0};
        while (done < per_core) {
            TraceRecord *block;
            std::size_t want;
            if (capture) {
                block = replay[core].data() + done;
                want = static_cast<std::size_t>(per_core - done);
            } else {
                block = chunk.data();
                want = static_cast<std::size_t>(
                    std::min<std::uint64_t>(chunk.size(),
                                            per_core - done));
            }
            const std::size_t got = dry.fill(block, want);
            simAssert(got == want, "trace source exhausted during "
                                   "steady-state pre-population");
            for (std::size_t i = 0; i < got; ++i) {
                const TraceRecord &record = block[i];
                const Addr page =
                    pageBase(record.vaddr, record.pageSize);
                const std::uint64_t key = mix64(page) ^ space_key;
                // Page-local runs dominate the streams: skip the set
                // probe when the key repeats back-to-back.
                if (key == last_key)
                    continue;
                last_key = key;
                if (!seen.insert(key))
                    continue;
                const TranslationInfo info = map.ensureMapped(
                    vm, pid, record.vaddr, record.pageSize);
                machine.scheme().prewarm(
                    core, record.vaddr, record.pageSize, vm, pid,
                    info.hpa >> pageShift(record.pageSize));
            }
            done += got;
        }
        // Leave the source rewound whether or not the timed run will
        // replay the capture instead of re-reading it.
        dry.rewind();
    }
}

void
SimulationEngine::prepopulateSharded()
{
    const unsigned cores = machine.numCores();
    const std::uint64_t per_core =
        engineConfig.warmupRefsPerCore + engineConfig.refsPerCore;
    const bool capture = per_core <= replayCapRecords;
    replay.clear();
    if (capture)
        replay.resize(cores);

    // Any prefilled blocks left over from an earlier run() were read
    // past the rewind below — drop them.
    std::fill(shard->nextLen.begin(), shard->nextLen.end(), 0);
    std::fill(shard->exhausted.begin(), shard->exhausted.end(), 0);

    // Stage 1 (parallel, order-free): each worker enumerates one
    // core's stream — capturing it for the timed run's replay when
    // it fits the cap — and emits the stream's first-touch pages in
    // stream order. This is the bulk of pre-population (generator
    // work, hashing, in-stream dedup) and touches no shared machine
    // state: per-core sources, captures, and candidate lists are
    // disjoint.
    std::vector<std::vector<PrepopPage>> first_touch(cores);
    shard->pool.forEach(cores, [&](std::size_t core) {
        TraceSource &dry = *sources[core];
        dry.rewind();
        const VmId vm = coreVm[core];
        const ProcessId pid = corePid[core];
        const std::uint64_t space_key =
            mix64((static_cast<std::uint64_t>(pid) << 16) | vm);
        std::vector<PrepopPage> &pages = first_touch[core];
        U64Set stream_seen(std::size_t{1} << 14);
        std::vector<TraceRecord> chunk;
        if (capture)
            replay[core].resize(per_core);
        else
            chunk.resize(streamBlockRecords);

        std::uint64_t done = 0;
        std::uint64_t last_key = ~std::uint64_t{0};
        while (done < per_core) {
            TraceRecord *block;
            std::size_t want;
            if (capture) {
                block = replay[core].data() + done;
                want = static_cast<std::size_t>(per_core - done);
            } else {
                block = chunk.data();
                want = static_cast<std::size_t>(
                    std::min<std::uint64_t>(chunk.size(),
                                            per_core - done));
            }
            const std::size_t got = dry.fill(block, want);
            simAssert(got == want, "trace source exhausted during "
                                   "steady-state pre-population");
            for (std::size_t i = 0; i < got; ++i) {
                const TraceRecord &record = block[i];
                const Addr page =
                    pageBase(record.vaddr, record.pageSize);
                const std::uint64_t key = mix64(page) ^ space_key;
                if (key == last_key)
                    continue;
                last_key = key;
                if (stream_seen.insert(key))
                    pages.push_back(
                        {key, record.vaddr, record.pageSize});
            }
            done += got;
        }
        dry.rewind();
    });

    // Stage 2 (serial, deterministic): install the globally novel
    // pages in core order. The serial prepopulate() processes cores
    // sequentially against one global seen-set, so its install
    // sequence is "core 0's in-stream first touches, then core 1's
    // not already seen, ...". Filtering each core's ordered
    // first-touch list through the same global set reproduces that
    // ensureMapped()/prewarm() call sequence exactly — page tables,
    // frame-allocation order, and scheme stores come out
    // bit-identical.
    MemoryMap &map = machine.memoryMap();
    U64Set seen(std::size_t{1} << 16);
    for (unsigned core = 0; core < cores; ++core) {
        const VmId vm = coreVm[core];
        const ProcessId pid = corePid[core];
        for (const PrepopPage &page : first_touch[core]) {
            if (!seen.insert(page.key))
                continue;
            const TranslationInfo info = map.ensureMapped(
                vm, pid, page.vaddr, page.pageSize);
            machine.scheme().prewarm(
                core, page.vaddr, page.pageSize, vm, pid,
                info.hpa >> pageShift(page.pageSize));
        }
    }
}

RunResult
SimulationEngine::run()
{
    const unsigned cores = machine.numCores();

    if (engineConfig.prepopulate)
        prepopulate();
    else
        replay.clear();

    std::vector<Lane> lanes(cores);
    for (unsigned core = 0; core < cores; ++core) {
        Lane &lane = lanes[core];
        lane.mmu = &machine.mmu(core);
        lane.vm = coreVm[core];
        lane.pid = corePid[core];
        if (replay.empty())
            lane.scratch.resize(streamBlockRecords);
    }

    // Warmup: populate TLBs, caches, page tables, POM-TLB.
    const std::uint64_t warmup = engineConfig.warmupRefsPerCore;
    if (warmup > 0) {
        runPhase(lanes, warmup);
        machine.resetStats();
        for (Lane &lane : lanes) {
            lane.instructions = 0;
            lane.pageWalks = 0;
            lane.shootdowns = 0;
        }
    }

    // Measured phase.
    std::vector<Cycles> start_clocks(cores);
    for (unsigned core = 0; core < cores; ++core)
        start_clocks[core] = lanes[core].clock;
    runPhase(lanes, engineConfig.refsPerCore);

    RunResult result;
    result.cores.resize(cores);
    for (unsigned core = 0; core < cores; ++core) {
        CoreRunStats &stats = result.cores[core];
        const Lane &lane = lanes[core];
        const Mmu &mmu = *lane.mmu;
        stats.refs = engineConfig.refsPerCore;
        stats.instructions = lane.instructions;
        stats.cycles = lane.clock - start_clocks[core];
        stats.translationCycles = mmu.totalTranslationCycles();
        stats.l1TlbHits = mmu.l1HitCount();
        stats.l2TlbHits = mmu.l2HitCount();
        stats.lastLevelTlbMisses = mmu.lastLevelMissCount();
        stats.avgPenaltyPerMiss = mmu.avgPenaltyPerMiss();
        stats.pageWalks = lane.pageWalks;
        stats.shootdowns = lane.shootdowns;
    }

    // The capture can be tens of megabytes; do not hold it between
    // runs (a later run() re-captures during its pre-population).
    replay.clear();
    replay.shrink_to_fit();
    return result;
}

} // namespace pomtlb

/**
 * @file
 * The sweep-at-scale layer: memoized, checkpointed, resumable
 * campaigns on top of sim/sweep.hh.
 *
 * A campaign is a large cross product of (benchmark, scheme, config)
 * jobs, and repeated campaigns overlap heavily — re-running the
 * unchanged 95% is wasted compute. Three cooperating pieces fix
 * that, all documented field-by-field in docs/sweep-service.md:
 *
 *  - **Content hashing** (jobIdentityJson / jobHash): every job is
 *    reduced to a canonical JSON identity — schema version,
 *    benchmark, canonical scheme name, label, and the *complete*
 *    serialised configuration — and hashed with 128-bit FNV-1a.
 *    Identical jobs get identical hashes in any process on any
 *    host; any knob that can change a result changes the hash.
 *
 *  - **The on-disk result cache** (SweepCache,
 *    `pomtlb-sweepcache-v1`): one JSON blob per job hash under a
 *    cache directory, written via atomic rename so readers never
 *    observe a torn entry; entries that fail validation are moved
 *    to a quarantine subdirectory (never silently served, never
 *    deleted) and the job simply re-runs.
 *
 *  - **The checkpoint journal** (SweepJournal,
 *    `pomtlb-sweepjournal-v1`): an append-only JSONL file, one
 *    record per completed job, flushed as each job finishes. A
 *    killed sweep resumes by replaying the journal: completed jobs
 *    are served from it, a torn trailing record (the crash write)
 *    is truncated away, and only the remainder executes.
 *
 * SweepService orchestrates the three around SweepRunner and emits
 * results *incrementally in request order*, which is what the
 * `pomtlb serve` protocol (sim/sweep_serve.hh) streams to clients.
 *
 * Determinism contract: a service-built document is byte-identical
 * whether every job executed, came from the cache, came from the
 * journal, or any mix — because the cache stores the exact
 * `pomtlb-sweep-v1` entry bytes and the only nondeterministic field
 * (`wall_seconds`, host wall clock) is normalised to 0 in the
 * identity form. Real wall times are reported out-of-band in the
 * journal records and job reports.
 */

#ifndef POMTLB_SIM_SWEEP_CACHE_HH
#define POMTLB_SIM_SWEEP_CACHE_HH

#include <cstddef>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/sweep.hh"

namespace pomtlb
{

/** Schema identifier of one on-disk cache entry. */
inline constexpr const char *kSweepCacheSchemaV1 =
    "pomtlb-sweepcache-v1";

/** Schema identifier of the checkpoint journal's header record. */
inline constexpr const char *kSweepJournalSchemaV1 =
    "pomtlb-sweepjournal-v1";

/**
 * Canonical identity serialisation of a SystemConfig: every field
 * that can influence a simulation result, in a fixed key order.
 * Shared by the sweep-job identity (jobIdentityJson) and the
 * scenario identity (scenarioIdentityJson in sim/scenario.hh) so
 * both hash the configuration the same way.
 */
JsonValue systemConfigJson(const SystemConfig &config);

/** Canonical identity serialisation of an EngineConfig. */
JsonValue engineConfigJson(const EngineConfig &config);

/**
 * The canonical JSON identity of one sweep job: cache-schema
 * version, benchmark, canonical scheme name, variant label, the
 * component-stats flag, and the complete configuration (every
 * SystemConfig and EngineConfig field that can influence a result).
 * ExperimentConfig::sweepJobs is deliberately excluded — results
 * are bit-identical at any worker count, so it must not split the
 * cache.
 *
 * Growing the configuration structs means extending this serialiser
 * (and bumping the cache schema version when semantics change);
 * the hash-stability test pins the current recipe.
 */
JsonValue jobIdentityJson(const ExperimentRequest &request);

/**
 * The job's content hash: 32 hex characters of 128-bit FNV-1a over
 * the compact serialisation of jobIdentityJson(). Stable across
 * processes and hosts; this is the cache key and journal key.
 */
std::string jobHash(const ExperimentRequest &request);

/**
 * Hash of a whole campaign: FNV-1a over the newline-joined job
 * hashes (order-sensitive). The journal header records it so a
 * journal is only ever replayed against the sweep that wrote it.
 */
std::string sweepHash(const std::vector<std::string> &job_hashes);

/**
 * The on-disk result cache: `<dir>/<job-hash>.json`, one
 * `pomtlb-sweepcache-v1` blob per entry.
 *
 * Writes go to a hidden temporary in the same directory and are
 * published with rename(), which is atomic on POSIX filesystems —
 * a concurrent reader sees the old entry, no entry, or the new
 * entry, never a prefix. Entries that fail validation on read
 * (unparsable, wrong schema, wrong hash, missing run) are moved to
 * `<dir>/quarantine/` for post-mortem and reported as misses.
 */
class SweepCache
{
  public:
    /** Open (and create if needed) the cache at @p dir. */
    explicit SweepCache(std::string dir);

    /** Path the entry for @p job_hash lives at. */
    std::string entryPath(const std::string &job_hash) const;

    /**
     * The cached `pomtlb-sweep-v1` run entry for @p job_hash, or
     * nullopt on miss. A corrupt entry is quarantined and reported
     * as a miss.
     */
    std::optional<JsonValue> lookup(const std::string &job_hash);

    /**
     * Atomically publish @p run (a `pomtlb-sweep-v1` run entry in
     * identity form) as the cache entry for @p job_hash. @p key is
     * the human-readable "benchmark/scheme[/label]" recorded
     * alongside for debuggability. Failures are reported with
     * warn() and swallowed — the cache is an optimisation, never a
     * correctness dependency.
     */
    void store(const std::string &job_hash, const std::string &key,
               const JsonValue &run);

    /** Entries quarantined by this instance. */
    std::size_t quarantined() const { return quarantineCount; }

  private:
    void quarantine(const std::string &path);

    std::string directory;
    std::size_t quarantineCount = 0;
    std::size_t tmpCounter = 0;
};

/**
 * The append-only checkpoint journal of one campaign
 * (`pomtlb-sweepjournal-v1` JSONL).
 *
 * Line 1 is a header naming the campaign (sweep hash + job count);
 * every subsequent line is one completed job: its hash, key,
 * source, real wall seconds, and the full run entry. open()
 * replays an existing file — dropping a torn trailing line, and
 * restarting the file entirely when the header names a different
 * campaign — and leaves the journal positioned for appends.
 */
class SweepJournal
{
  public:
    explicit SweepJournal(std::string journal_path);

    /**
     * Replay and position for append. Returns the completed jobs
     * (job hash -> run entry) when the existing header matches
     * @p sweep_hash_value / @p jobs; otherwise the file is
     * restarted with a fresh header and the map is empty.
     */
    std::map<std::string, JsonValue>
    open(const std::string &sweep_hash_value, std::size_t jobs);

    /** Append one completed-job record and flush it to the OS. */
    void append(const std::string &job_hash, const std::string &key,
                const std::string &source, double wall_seconds,
                const JsonValue &run);

    /** Records appended through this instance (not replayed ones). */
    std::size_t appended() const { return appendCount; }

    /** The journal's path. */
    const std::string &path() const { return journalPath; }

  private:
    std::string journalPath;
    std::ofstream out;
    std::size_t appendCount = 0;
};

/** Accounting of one sweepCacheGc() pass. */
struct SweepCacheGcStats
{
    std::size_t scanned = 0;     /**< Entries examined. */
    std::size_t evicted = 0;     /**< Entries removed. */
    std::uint64_t bytesFreed = 0; /**< Bytes of removed entries. */
    std::uint64_t bytesKept = 0;  /**< Bytes of surviving entries. */
};

/**
 * Evict entries from the sweep cache at @p dir: first every
 * top-level `*.json` entry older than @p max_age_seconds (0 = no
 * age limit), then oldest-first — ties broken by name for
 * determinism — until the survivors total at most @p max_bytes
 * (0 = no size limit). Only top-level entry files are candidates:
 * the quarantine subdirectory (post-mortem evidence) and hidden
 * in-flight temporaries are never touched.
 *
 * With @p dry_run set, nothing is removed: the returned stats
 * report what the same two-pass eviction *would* delete (evicted /
 * bytesFreed) and keep, so operators can audit a policy before
 * applying it (`pomtlb cache-gc --dry-run`).
 */
SweepCacheGcStats sweepCacheGc(const std::string &dir,
                               std::uint64_t max_bytes,
                               std::uint64_t max_age_seconds,
                               bool dry_run = false);

/** Where a job's result came from. */
enum class JobSource
{
    Executed, /**< Simulated in this process. */
    Cache,    /**< Served from the on-disk result cache. */
    Journal,  /**< Replayed from the checkpoint journal. */
};

/** Human-readable name of a JobSource ("executed", ...). */
const char *jobSourceName(JobSource source);

/** Per-job completion report handed to the emit callback. */
struct SweepJobReport
{
    std::size_t index = 0;  /**< Position in the request vector. */
    std::string key;        /**< "benchmark/scheme[/label]". */
    std::string hash;       /**< The job's content hash. */
    JobSource source = JobSource::Executed; /**< Result origin. */
    /** Host wall seconds actually spent (0 for cache/journal). */
    double wallSeconds = 0.0;
};

/** Aggregate accounting of one SweepService::run(). */
struct SweepServiceStats
{
    std::size_t jobs = 0;         /**< Requests in the campaign. */
    std::size_t executed = 0;     /**< Simulations actually run. */
    std::size_t cacheHits = 0;    /**< Jobs served from the cache. */
    std::size_t journalHits = 0;  /**< Jobs replayed from journal. */
    std::size_t deduplicated = 0; /**< Duplicate-hash jobs reused. */
    std::size_t quarantined = 0;  /**< Corrupt cache entries moved. */
};

/** Knobs of one SweepService. */
struct SweepServiceOptions
{
    /** Result-cache directory; empty disables memoization. */
    std::string cacheDir;
    /** Checkpoint-journal path; empty disables checkpointing. */
    std::string journalPath;
    /** Worker threads (SweepRunner semantics: 0 = hardware). */
    unsigned jobs = 1;
    /**
     * Fault injection for the crash/resume tests (and the
     * POMTLB_SWEEP_CRASH_AFTER CLI hook): after this many journal
     * appends the process exits immediately with status 137 —
     * no flushes, no destructors, like SIGKILL. 0 disables.
     */
    unsigned crashAfterAppends = 0;
};

/**
 * Orchestrates a campaign: hash every request, satisfy what the
 * journal and cache already hold, execute only the delta on a
 * SweepRunner pool, checkpoint every completion, and emit results
 * incrementally in request order.
 */
class SweepService
{
  public:
    explicit SweepService(SweepServiceOptions service_options);

    /**
     * Called for every job, strictly in request order, as the
     * completed prefix of the campaign extends — cached prefixes
     * stream out before (and while) later jobs execute. @p run is
     * the job's `pomtlb-sweep-v1` entry in identity form.
     */
    using Emit = std::function<void(const SweepJobReport &report,
                                    const JsonValue &run)>;

    /**
     * Run the campaign; returns the complete `pomtlb-sweep-v1`
     * document (byte-identical for any cache/journal/execution
     * mix of the same requests). Propagates the deterministic
     * lowest-index exception of SweepRunner on job failure;
     * completed jobs are already journaled at that point, so a
     * failed campaign resumes past everything that succeeded.
     */
    JsonValue run(const std::vector<ExperimentRequest> &requests,
                  const Emit &emit = Emit());

    /** Expand a spec and run it. */
    JsonValue run(const SweepSpec &spec, const Emit &emit = Emit())
    {
        return run(spec.expand(), emit);
    }

    /** Accounting of the most recent run(). */
    const SweepServiceStats &stats() const { return lastStats; }

    /** The options this service was built with. */
    const SweepServiceOptions &options() const
    {
        return serviceOptions;
    }

  private:
    SweepServiceOptions serviceOptions;
    SweepServiceStats lastStats;
};

} // namespace pomtlb

#endif // POMTLB_SIM_SWEEP_CACHE_HH

#include "sim/perf_model.hh"

#include "common/log.hh"

namespace pomtlb
{

AdditiveModelResult
PerfModel::evaluate(const AdditiveModelInput &input, double scheme_p_avg)
{
    simAssert(input.totalCycles > 0.0 && input.totalInstructions > 0.0,
              "additive model needs positive instruction/cycle counts");
    simAssert(input.totalPenalty <= input.totalCycles,
              "penalty cycles exceed total cycles");

    AdditiveModelResult result;
    result.idealCycles = input.totalCycles - input.totalPenalty;
    result.baselinePavg = input.totalMisses > 0.0
                              ? input.totalPenalty / input.totalMisses
                              : 0.0;
    result.baselineIpc = input.totalInstructions / input.totalCycles;
    result.schemeCycles =
        result.idealCycles + input.totalMisses * scheme_p_avg;
    result.schemeIpc = input.totalInstructions / result.schemeCycles;
    result.improvementPct =
        (result.schemeIpc / result.baselineIpc - 1.0) * 100.0;
    return result;
}

double
PerfModel::improvementPct(double overhead_pct, double cost_ratio)
{
    simAssert(overhead_pct >= 0.0 && overhead_pct < 100.0,
              "overhead percentage out of range");
    simAssert(cost_ratio >= 0.0, "negative translation cost ratio");
    const double ovh = overhead_pct / 100.0;
    const double relative_cycles = (1.0 - ovh) + ovh * cost_ratio;
    return (1.0 / relative_cycles - 1.0) * 100.0;
}

double
PerfModel::improvementPct(const BenchmarkProfile &profile,
                          ExecMode mode, double cost_ratio)
{
    const double overhead = mode == ExecMode::Native
                                ? profile.overheadNativePct
                                : profile.overheadVirtualPct;
    return improvementPct(overhead, cost_ratio);
}

} // namespace pomtlb

#include "sim/translation_trace.hh"

#include <cstdlib>
#include <ostream>

#include "common/log.hh"

namespace pomtlb
{

namespace
{

/** TlbLevel as a stable trace-field string. */
const char *
tlbLevelName(TlbLevel level)
{
    switch (level) {
      case TlbLevel::L1:
        return "l1";
      case TlbLevel::L2:
        return "l2";
      case TlbLevel::Miss:
        return "miss";
    }
    return "?";
}

} // namespace

TranslationTracer::TranslationTracer(std::size_t capacity,
                                     std::uint64_t sample_interval)
    : ring(capacity == 0 ? 1 : capacity),
      interval(sample_interval == 0 ? defaultSampleInterval()
                                    : sample_interval)
{
}

void
TranslationTracer::record(const TranslationEvent &event)
{
    ring[head] = event;
    head = (head + 1) % ring.size();
    if (held < ring.size())
        ++held;
    ++recorded;
}

std::size_t
TranslationTracer::size() const
{
    return held;
}

std::vector<TranslationEvent>
TranslationTracer::events() const
{
    std::vector<TranslationEvent> out;
    out.reserve(held);
    // Oldest event sits at head when wrapped, at 0 otherwise.
    const std::size_t start = held == ring.size() ? head : 0;
    for (std::size_t i = 0; i < held; ++i)
        out.push_back(ring[(start + i) % ring.size()]);
    return out;
}

void
TranslationTracer::writeJsonl(std::ostream &os) const
{
    for (const TranslationEvent &e : events()) {
        os << "{\"seq\":" << e.seq
           << ",\"core\":" << e.core
           << ",\"vaddr\":" << e.vaddr
           << ",\"page_size\":\"" << pageSizeName(e.size) << "\""
           << ",\"vm\":" << e.vm
           << ",\"pid\":" << e.pid
           << ",\"start_cycle\":" << e.start
           << ",\"cycles\":" << e.cycles
           << ",\"sram_cycles\":" << e.sramCycles
           << ",\"scheme_cycles\":" << e.schemeCycles
           << ",\"tlb_level\":\"" << tlbLevelName(e.tlbLevel) << "\""
           << ",\"served_by\":\"" << servicePointName(e.servedBy)
           << "\""
           << ",\"probes\":" << static_cast<unsigned>(e.probes)
           << ",\"first_try\":" << (e.firstTryServed ? "true" : "false")
           << ",\"walked\":" << (e.walked ? "true" : "false")
           << "}\n";
    }
}

void
TranslationTracer::reset()
{
    head = 0;
    held = 0;
    seen = 0;
    recorded = 0;
}

std::uint64_t
TranslationTracer::defaultSampleInterval()
{
    if (const char *env = std::getenv("POMTLB_TRACE_SAMPLE")) {
        const long long parsed = std::atoll(env);
        if (parsed > 0)
            return static_cast<std::uint64_t>(parsed);
    }
    return 64;
}

} // namespace pomtlb

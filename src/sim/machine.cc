#include "sim/machine.hh"
#include <ostream>


#include "baseline/nested_scheme.hh"
#include "baseline/shared_l2_scheme.hh"
#include "baseline/tsb_scheme.hh"
#include "common/log.hh"

namespace pomtlb
{

const char *
schemeKindName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::NestedWalk:
        return "Baseline";
      case SchemeKind::PomTlb:
        return "POM-TLB";
      case SchemeKind::SharedL2:
        return "Shared_L2";
      case SchemeKind::Tsb:
        return "TSB";
    }
    return "?";
}

const char *
servicePointName(ServicePoint point)
{
    switch (point) {
      case ServicePoint::SramL1:
        return "sram_l1_tlb";
      case ServicePoint::SramL2:
        return "sram_l2_tlb";
      case ServicePoint::CacheL2D:
        return "pom_l2d_cache";
      case ServicePoint::CacheL3D:
        return "pom_l3d_cache";
      case ServicePoint::PomDram:
        return "pom_dram";
      case ServicePoint::SharedTlb:
        return "shared_l2_tlb";
      case ServicePoint::TsbBuffer:
        return "tsb_buffer";
      case ServicePoint::PageWalk:
        return "page_walk";
    }
    return "?";
}

const std::vector<ServicePoint> &
allServicePoints()
{
    static const std::vector<ServicePoint> points = {
        ServicePoint::SramL1,    ServicePoint::SramL2,
        ServicePoint::CacheL2D,  ServicePoint::CacheL3D,
        ServicePoint::PomDram,   ServicePoint::SharedTlb,
        ServicePoint::TsbBuffer, ServicePoint::PageWalk};
    return points;
}

std::optional<ServicePoint>
servicePointFromName(const std::string &name)
{
    for (ServicePoint point : allServicePoints()) {
        if (name == servicePointName(point))
            return point;
    }
    return std::nullopt;
}

const std::vector<SchemeKind> &
allSchemeKinds()
{
    static const std::vector<SchemeKind> kinds = {
        SchemeKind::NestedWalk, SchemeKind::PomTlb,
        SchemeKind::SharedL2, SchemeKind::Tsb};
    return kinds;
}

std::optional<SchemeKind>
schemeKindFromName(const std::string &name)
{
    if (name == "baseline" || name == "nested" || name == "Baseline")
        return SchemeKind::NestedWalk;
    if (name == "pom" || name == "pom-tlb" || name == "POM-TLB")
        return SchemeKind::PomTlb;
    if (name == "shared" || name == "shared-l2" ||
        name == "Shared_L2")
        return SchemeKind::SharedL2;
    if (name == "tsb" || name == "TSB")
        return SchemeKind::Tsb;
    return std::nullopt;
}

Machine::Machine(const SystemConfig &config, SchemeKind scheme_kind)
    : systemConfig(config), kind(scheme_kind)
{
    systemConfig.dieStacked.coreFreqGhz = systemConfig.coreFreqGhz;
    systemConfig.mainMemory.coreFreqGhz = systemConfig.coreFreqGhz;
    systemConfig.validate();

    mainMem = std::make_unique<DramController>(systemConfig.mainMemory);
    dieStacked =
        std::make_unique<DramController>(systemConfig.dieStacked);

    MemoryMapConfig map_config;
    map_config.mode = systemConfig.mode;
    memMap = std::make_unique<MemoryMap>(map_config);

    if (systemConfig.dieStackedL4Cache) {
        // The HBM standard provides multiple channels (Section 2.2);
        // the L4 cache gets its own so it never contends with
        // POM-TLB traffic.
        DramConfig l4_config = systemConfig.dieStacked;
        l4_config.name = "die-stacked-l4";
        l4Channel = std::make_unique<DramController>(l4_config);
    }
    dataHierarchy = std::make_unique<DataHierarchy>(
        systemConfig, *mainMem, l4Channel.get());

    walkers.reserve(systemConfig.numCores);
    for (unsigned core = 0; core < systemConfig.numCores; ++core) {
        walkers.push_back(std::make_unique<PageWalker>(
            core, *memMap, *dataHierarchy, systemConfig.psc));
    }

    switch (kind) {
      case SchemeKind::NestedWalk:
        translationScheme = std::make_unique<NestedWalkScheme>(walkers);
        break;
      case SchemeKind::PomTlb:
        pomTlb = std::make_unique<PomTlb>(systemConfig.pomTlb,
                                          *dieStacked);
        translationScheme = std::make_unique<PomTlbScheme>(
            systemConfig.pomTlb, *pomTlb, *dataHierarchy, walkers);
        break;
      case SchemeKind::SharedL2: {
        // Combine the private L2 TLB capacities into one shared
        // structure; its latency reflects the larger SRAM array plus
        // the interconnect hop (see analysis/cacti.hh for the trend).
        TlbConfig shared = systemConfig.l2Tlb;
        shared.name = "shared_l2tlb";
        shared.entries *= systemConfig.numCores;
        shared.accessLatency = 24;
        translationScheme =
            std::make_unique<SharedL2Scheme>(shared, walkers);
        break;
      }
      case SchemeKind::Tsb: {
        // The software buffer lives at the top of host-physical
        // memory, far above anything the frame allocator hands out.
        MemoryMapConfig defaults;
        const Addr tsb_base =
            defaults.hostPhysBytes - systemConfig.tsb.capacityBytes;
        translationScheme = std::make_unique<TsbScheme>(
            systemConfig.tsb, tsb_base, *dataHierarchy, walkers);
        break;
      }
    }

    mmus.reserve(systemConfig.numCores);
    for (unsigned core = 0; core < systemConfig.numCores; ++core) {
        mmus.push_back(std::make_unique<Mmu>(systemConfig, core,
                                             *translationScheme));
    }

    buildRegistry();
}

void
Machine::buildRegistry()
{
    // Registration order is the dump/export order; keep it stable so
    // documents and golden outputs stay diffable. Component groups
    // must outlive the registry — everything registered here is owned
    // by the machine (directly or through a component).
    for (auto &mmu : mmus)
        statsRegistry.add(mmu->stats());
    for (auto &walker : walkers)
        statsRegistry.add(walker->stats());
    if (const StatGroup *scheme_stats = translationScheme->statistics())
        statsRegistry.add(*scheme_stats);
    for (unsigned core = 0; core < systemConfig.numCores; ++core) {
        statsRegistry.add(dataHierarchy->l1d(core).stats());
        statsRegistry.add(dataHierarchy->l2d(core).stats());
    }
    statsRegistry.add(dataHierarchy->l3d().stats());
    statsRegistry.add(dataHierarchy->stats());
    if (DramCache *l4 = dataHierarchy->l4Cache())
        statsRegistry.add(l4->stats());
    statsRegistry.add(mainMem->stats());
    statsRegistry.add(dieStacked->stats());
    if (l4Channel)
        statsRegistry.add(l4Channel->stats());
}

TranslationTracer &
Machine::enableTracing(std::size_t capacity,
                       std::uint64_t sample_interval)
{
    eventTracer =
        std::make_unique<TranslationTracer>(capacity, sample_interval);
    for (auto &mmu : mmus)
        mmu->setTracer(eventTracer.get());
    return *eventTracer;
}

PomTlbScheme *
Machine::pomTlbScheme()
{
    if (kind != SchemeKind::PomTlb)
        return nullptr;
    return static_cast<PomTlbScheme *>(translationScheme.get());
}

void
Machine::shootdownVm(VmId vm)
{
    for (auto &mmu : mmus)
        mmu->invalidateVm(vm);
    for (auto &walker : walkers)
        walker->invalidateVm(vm);
    translationScheme->invalidateVm(vm);
}

void
Machine::shootdownPage(Addr vaddr, PageSize size, VmId vm,
                       ProcessId pid)
{
    const PageNum vpn = pageNumber(vaddr, size);
    for (auto &mmu : mmus)
        mmu->tlbs().invalidatePage(vpn, size, vm, pid);
    translationScheme->invalidatePage(vaddr, size, vm, pid);
}

void
Machine::dumpStats(std::ostream &os) const
{
    statsRegistry.dump(os);
}

void
Machine::collectStats(
    std::vector<std::pair<std::string, double>> &out) const
{
    statsRegistry.collect(out);
}

void
Machine::resetStats()
{
    for (auto &mmu : mmus)
        mmu->resetStats();
    for (auto &walker : walkers)
        walker->resetStats();
    dataHierarchy->resetStats();
    if (DramCache *l4 = dataHierarchy->l4Cache())
        l4->resetStats();
    mainMem->resetStats();
    if (l4Channel)
        l4Channel->resetStats();
    dieStacked->resetStats();
    translationScheme->resetStats();
    if (eventTracer)
        eventTracer->reset();
}

} // namespace pomtlb

#include "sim/machine.hh"
#include <ostream>
#include <stdexcept>

#include "common/log.hh"
#include "sim/scheme_registry.hh"

namespace pomtlb
{

const char *
servicePointName(ServicePoint point)
{
    switch (point) {
      case ServicePoint::SramL1:
        return "sram_l1_tlb";
      case ServicePoint::SramL2:
        return "sram_l2_tlb";
      case ServicePoint::CacheL2D:
        return "pom_l2d_cache";
      case ServicePoint::CacheL3D:
        return "pom_l3d_cache";
      case ServicePoint::PomDram:
        return "pom_dram";
      case ServicePoint::SharedTlb:
        return "shared_l2_tlb";
      case ServicePoint::TsbBuffer:
        return "tsb_buffer";
      case ServicePoint::PageWalk:
        return "page_walk";
      case ServicePoint::CoalescedTlb:
        return "coalesced_tlb";
      case ServicePoint::VictimaL2D:
        return "victima_l2d_cache";
      case ServicePoint::VictimaL3D:
        return "victima_l3d_cache";
    }
    return "?";
}

const std::vector<ServicePoint> &
allServicePoints()
{
    static const std::vector<ServicePoint> points = {
        ServicePoint::SramL1,       ServicePoint::SramL2,
        ServicePoint::CacheL2D,     ServicePoint::CacheL3D,
        ServicePoint::PomDram,      ServicePoint::SharedTlb,
        ServicePoint::TsbBuffer,    ServicePoint::PageWalk,
        ServicePoint::CoalescedTlb, ServicePoint::VictimaL2D,
        ServicePoint::VictimaL3D};
    return points;
}

std::optional<ServicePoint>
servicePointFromName(const std::string &name)
{
    for (ServicePoint point : allServicePoints()) {
        if (name == servicePointName(point))
            return point;
    }
    return std::nullopt;
}

Machine::Machine(const SystemConfig &config, SchemeKind scheme_kind)
    : Machine(config, std::string(schemeKindName(scheme_kind)))
{
}

Machine::Machine(const SystemConfig &config, const std::string &scheme)
    : systemConfig(config)
{
    systemConfig.dieStacked.coreFreqGhz = systemConfig.coreFreqGhz;
    systemConfig.mainMemory.coreFreqGhz = systemConfig.coreFreqGhz;
    systemConfig.validate();

    mainMem = std::make_unique<DramController>(systemConfig.mainMemory);
    dieStacked =
        std::make_unique<DramController>(systemConfig.dieStacked);

    MemoryMapConfig map_config;
    map_config.mode = systemConfig.mode;
    memMap = std::make_unique<MemoryMap>(map_config);

    if (systemConfig.dieStackedL4Cache) {
        // The HBM standard provides multiple channels (Section 2.2);
        // the L4 cache gets its own so it never contends with
        // POM-TLB traffic.
        DramConfig l4_config = systemConfig.dieStacked;
        l4_config.name = "die-stacked-l4";
        l4Channel = std::make_unique<DramController>(l4_config);
    }
    dataHierarchy = std::make_unique<DataHierarchy>(
        systemConfig, *mainMem, l4Channel.get());

    walkers.reserve(systemConfig.numCores);
    for (unsigned core = 0; core < systemConfig.numCores; ++core) {
        walkers.push_back(std::make_unique<PageWalker>(
            core, *memMap, *dataHierarchy, systemConfig.psc));
    }

    const SchemeRegistry::Info *info =
        SchemeRegistry::global().find(scheme);
    if (info == nullptr) {
        throw std::invalid_argument("unknown translation scheme '" +
                                    scheme + "'");
    }
    schemeKey = info->name;
    legacyKind = info->legacy;
    translationScheme = info->factory(systemConfig, *this);

    mmus.reserve(systemConfig.numCores);
    for (unsigned core = 0; core < systemConfig.numCores; ++core) {
        mmus.push_back(std::make_unique<Mmu>(systemConfig, core,
                                             *translationScheme));
    }

    buildRegistry();
}

void
Machine::buildRegistry()
{
    // Registration order is the dump/export order; keep it stable so
    // documents and golden outputs stay diffable. Component groups
    // must outlive the registry — everything registered here is owned
    // by the machine (directly or through a component).
    for (auto &mmu : mmus)
        statsRegistry.add(mmu->stats());
    for (auto &walker : walkers)
        statsRegistry.add(walker->stats());
    if (const StatGroup *scheme_stats = translationScheme->statistics())
        statsRegistry.add(*scheme_stats);
    for (unsigned core = 0; core < systemConfig.numCores; ++core) {
        statsRegistry.add(dataHierarchy->l1d(core).stats());
        statsRegistry.add(dataHierarchy->l2d(core).stats());
    }
    statsRegistry.add(dataHierarchy->l3d().stats());
    statsRegistry.add(dataHierarchy->stats());
    if (DramCache *l4 = dataHierarchy->l4Cache())
        statsRegistry.add(l4->stats());
    statsRegistry.add(mainMem->stats());
    statsRegistry.add(dieStacked->stats());
    if (l4Channel)
        statsRegistry.add(l4Channel->stats());
}

TranslationTracer &
Machine::enableTracing(std::size_t capacity,
                       std::uint64_t sample_interval)
{
    eventTracer =
        std::make_unique<TranslationTracer>(capacity, sample_interval);
    for (auto &mmu : mmus)
        mmu->setTracer(eventTracer.get());
    return *eventTracer;
}

PomTlb &
Machine::ensurePomTlbDevice()
{
    if (!pomTlb) {
        pomTlb = std::make_unique<PomTlb>(systemConfig.pomTlb,
                                          *dieStacked);
    }
    return *pomTlb;
}

PomTlbScheme *
Machine::pomTlbScheme()
{
    return dynamic_cast<PomTlbScheme *>(translationScheme.get());
}

void
Machine::shootdownVm(VmId vm)
{
    for (auto &mmu : mmus)
        mmu->invalidateVm(vm);
    for (auto &walker : walkers)
        walker->invalidateVm(vm);
    translationScheme->invalidateVm(vm);
}

void
Machine::shootdownPage(Addr vaddr, PageSize size, VmId vm,
                       ProcessId pid)
{
    const PageNum vpn = pageNumber(vaddr, size);
    for (auto &mmu : mmus)
        mmu->tlbs().invalidatePage(vpn, size, vm, pid);
    translationScheme->invalidatePage(vaddr, size, vm, pid);
}

void
Machine::dumpStats(std::ostream &os) const
{
    statsRegistry.dump(os);
}

void
Machine::collectStats(
    std::vector<std::pair<std::string, double>> &out) const
{
    statsRegistry.collect(out);
}

void
Machine::resetStats()
{
    for (auto &mmu : mmus)
        mmu->resetStats();
    for (auto &walker : walkers)
        walker->resetStats();
    dataHierarchy->resetStats();
    if (DramCache *l4 = dataHierarchy->l4Cache())
        l4->resetStats();
    mainMem->resetStats();
    if (l4Channel)
        l4Channel->resetStats();
    dieStacked->resetStats();
    translationScheme->resetStats();
    if (eventTracer)
        eventTracer->reset();
}

} // namespace pomtlb

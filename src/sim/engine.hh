/**
 * @file
 * The trace-driven simulation engine.
 *
 * Each core runs its own generator stream; the engine always advances
 * the core with the smallest local clock, so the cores' memory
 * traffic interleaves at the shared L3/DRAM the way a multicore's
 * would (the Ramulator-style cadence of Section 3.2). Non-memory
 * instructions advance a core's clock at one instruction per cycle;
 * memory references charge translation plus data-path latency.
 *
 * The hot path is batched: a ClockHeap picks the earliest core in
 * O(log cores) (with an O(1) fast path while that core stays
 * earliest), trace records arrive in caller-owned blocks via
 * TraceSource::fill() rather than one virtual call each, and the
 * steady state allocates nothing — all scratch buffers are sized
 * once per run. The scheduling order is exactly the old per-step
 * linear scan's (lowest clock, ties to the lowest core index), so
 * results are bit-identical to the pre-batching engine.
 *
 * A warmup phase runs before statistics are reset, so reported rates
 * are steady-state.
 *
 * Sharded execution (EngineConfig::runThreads) adds worker threads
 * without giving up one bit of that determinism: workers only run
 * the order-independent half of the work (trace generation, capture,
 * pre-population scans, block prefill, handed over at epoch
 * barriers), while the coordinating thread applies every cross-core
 * effect through the same heap loop in the same (clock, core) order.
 * Serial and sharded runs of any thread count, shard partition, or
 * epoch length therefore produce byte-identical statistics
 * (docs/internals.md §14).
 */

#ifndef POMTLB_SIM_ENGINE_HH
#define POMTLB_SIM_ENGINE_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/machine.hh"
#include "trace/profile.hh"
#include "trace/source.hh"

namespace pomtlb
{

/** Engine run parameters. */
struct EngineConfig
{
    /** Measured references per core. */
    std::uint64_t refsPerCore = 150000;
    /** Warmup references per core (stats reset afterwards). */
    std::uint64_t warmupRefsPerCore = 120000;
    /** VM each core's workload runs in (resized to core count). */
    std::vector<VmId> coreVm;
    /** Process id base: core c runs as pid base + c. */
    ProcessId pidBase = 1;
    /** Trace seed (combined with the system seed). */
    std::uint64_t seed = 42;
    /**
     * TLB shootdown injection (Section 2.2): every
     * @c shootdownIntervalRefs references machine-wide, the page of
     * the triggering reference is shot down across all cores and the
     * initiating core is charged @c shootdownCycles (IPI + handler
     * cost). 0 disables injection (the paper notes shootdowns are
     * rare; this knob quantifies "rare").
     */
    std::uint64_t shootdownIntervalRefs = 0;
    Cycles shootdownCycles = 500;
    /**
     * When non-empty, the primary constructor drives every core from
     * this pomtlb-tracepack-v1 file instead of the synthetic
     * generators: core @c c replays pack stream <tt>c %
     * stream_count</tt>, wrapping, straight out of the mapping
     * (trace/tracepack.hh). The pack's content hash joins the
     * sweep-cache job identity (sim/sweep_cache.hh) so memoized
     * campaigns re-execute when the trace changes. Opening throws a
     * path-named TraceError on corrupt input.
     */
    std::string tracePackPath;
    /**
     * Steady-state pre-population: before timed simulation, a dry
     * enumeration of the whole trace installs every touched page in
     * the page tables and in the scheme's persistent translation
     * store (POM-TLB / TSB). This models workloads that have run far
     * longer than the simulated window — the regime the paper
     * measures — so first-touch cold misses do not pollute the
     * steady-state statistics. SRAM TLBs and data caches still warm
     * up normally during the warmup phase.
     */
    bool prepopulate = true;
    /**
     * Intra-run sharding: worker threads that run the order-
     * independent half of a run — trace generation, stream capture,
     * pre-population page scanning, block prefill — while the
     * coordinating thread applies every cross-core effect (cache and
     * DRAM-cache state, POM-TLB fills, shootdown broadcasts, stat
     * deltas) in exact (clock, core) order at epoch barriers. 0 runs
     * everything on the calling thread. Results are bit-identical
     * for every value (docs/internals.md §14; enforced by
     * tests/test_engine_sharded.cc), which is why this field — like
     * epochCycles — is deliberately excluded from the sweep-cache
     * job identity (engineConfigJson() in sim/sweep_cache.cc).
     */
    unsigned runThreads = 0;
    /**
     * Simulated-cycle length of one sharded-execution epoch: the
     * horizon at which the coordinator takes a barrier and issues
     * the next batch of parallel block prefills. 0 picks the default
     * (8192 cycles). Affects only synchronization cadence, never
     * results, and is excluded from job identity with runThreads.
     */
    Cycles epochCycles = 0;
};

/** Per-core results of a run. */
struct CoreRunStats
{
    std::uint64_t refs = 0;
    InstCount instructions = 0;
    Cycles cycles = 0;
    /** Post-L1-TLB translation cycles (T_post in DESIGN.md). */
    std::uint64_t translationCycles = 0;
    std::uint64_t l1TlbHits = 0;
    std::uint64_t l2TlbHits = 0;
    std::uint64_t lastLevelTlbMisses = 0;
    /** Average scheme cycles per last-level TLB miss (the paper's P). */
    double avgPenaltyPerMiss = 0.0;
    std::uint64_t pageWalks = 0;
    std::uint64_t shootdowns = 0;
};

/**
 * Machine-wide aggregates over a RunResult's per-core stats —
 * everything the old total*() walker family computed, gathered in
 * one pass and cached.
 */
struct RunTotals
{
    std::uint64_t refs = 0;
    InstCount instructions = 0;
    Cycles cycles = 0;
    std::uint64_t translationCycles = 0;
    std::uint64_t l1TlbHits = 0;
    std::uint64_t l2TlbHits = 0;
    std::uint64_t lastLevelMisses = 0;
    std::uint64_t pageWalks = 0;
    std::uint64_t shootdowns = 0;
    /** Machine-wide average penalty per last-level TLB miss. */
    double avgPenaltyPerMiss = 0.0;
    /** Fraction of last-level TLB misses that needed a page walk. */
    double walkFraction = 0.0;
};

/** Whole-run results. */
struct RunResult
{
    std::vector<CoreRunStats> cores;

    /**
     * Machine-wide aggregates, computed on first use and cached.
     * Callers must not mutate @c cores after calling totals(); build
     * the per-core vector first, aggregate once.
     */
    const RunTotals &totals() const;

  private:
    mutable RunTotals cached;
    mutable bool cachedValid = false;
};

/** Drives one benchmark through one machine. */
class SimulationEngine
{
  public:
    /**
     * @param machine  The machine to drive (state persists between
     *                 run() calls; construct fresh machines for
     *                 independent experiments).
     * @param profile  Benchmark to generate traces for.
     * @param config   Run length, warmup, VM placement, seed.
     */
    SimulationEngine(Machine &machine, const BenchmarkProfile &profile,
                     const EngineConfig &config);

    /**
     * Drive the machine from externally supplied trace sources (one
     * per core — e.g. recorded trace files). @p profile supplies the
     * workload metadata (multithreaded/pid policy and the Table 2
     * constants used by the performance model).
     */
    SimulationEngine(Machine &machine, const BenchmarkProfile &profile,
                     const EngineConfig &config,
                     std::vector<std::unique_ptr<TraceSource>> sources);

    ~SimulationEngine();

    /** Run warmup + measured phases; returns measured-phase stats. */
    RunResult run();

  private:
    /**
     * Per-core execution lane: the core's clock, its current trace
     * block, and the stats deltas it accumulates locally (flushed
     * into the RunResult at phase boundaries). Sized once per run —
     * nothing here allocates on the per-reference path.
     */
    struct Lane
    {
        Cycles clock = 0;
        /** Records consumed from the source this run. */
        std::uint64_t consumed = 0;
        /** References issued in the current phase. */
        std::uint64_t phaseDone = 0;
        /** Current trace block (replay slice or scratch buffer). */
        const TraceRecord *block = nullptr;
        std::uint64_t blockPos = 0;
        std::uint64_t blockLen = 0;
        /** Scratch block when streaming straight from the source. */
        std::vector<TraceRecord> scratch;
        Mmu *mmu = nullptr;
        VmId vm = 1;
        ProcessId pid = 1;
        InstCount instructions = 0;
        std::uint64_t pageWalks = 0;
        std::uint64_t shootdowns = 0;
    };

    /** Common constructor tail (VM map, per-core state, sharding). */
    void initCores();

    /** Refill @p lane's block from its replay slice or source. */
    void refill(Lane &lane, unsigned core);

    /** Issue references until every lane has done @p target refs. */
    void runPhase(std::vector<Lane> &lanes, std::uint64_t target);

    /** Dry-run the whole trace to pre-install steady-state pages. */
    void prepopulate();

    /**
     * Sharded pre-population (runThreads > 0): worker threads scan
     * and capture every core's stream in parallel, each emitting its
     * stream's first-touch pages in order; the coordinator then
     * installs the globally novel ones serially in core order —
     * exactly the serial prepopulate()'s ensureMapped()/prewarm()
     * call sequence, so the page tables and scheme stores end up
     * bit-identical.
     */
    void prepopulateSharded();

    /**
     * Epoch barrier of a sharded streaming run: top up every drained
     * core's prefill buffer with one parallel batch of
     * TraceSource::fill() calls.
     */
    void prefillBlocks();

    Machine &machine;
    BenchmarkProfile profile;
    EngineConfig engineConfig;
    std::vector<std::unique_ptr<TraceSource>> sources;
    std::vector<VmId> coreVm;
    std::vector<ProcessId> corePid;
    /**
     * When pre-population captured the trace, the timed run replays
     * these per-core record vectors instead of re-generating the
     * stream (one capture, two uses).
     */
    std::vector<std::vector<TraceRecord>> replay;
    std::uint64_t refsSinceShootdown = 0;
    /**
     * Sharded-execution state (worker pool and per-core prefill
     * buffers); non-null only when engineConfig.runThreads > 0. The
     * type lives in engine.cc — nothing about sharding leaks into
     * the public surface beyond the two EngineConfig knobs.
     */
    struct Shard;
    std::unique_ptr<Shard> shard;
};

} // namespace pomtlb

#endif // POMTLB_SIM_ENGINE_HH

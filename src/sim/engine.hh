/**
 * @file
 * The trace-driven simulation engine.
 *
 * Each core runs its own generator stream; the engine always advances
 * the core with the smallest local clock, so the cores' memory
 * traffic interleaves at the shared L3/DRAM the way a multicore's
 * would (the Ramulator-style cadence of Section 3.2). Non-memory
 * instructions advance a core's clock at one instruction per cycle;
 * memory references charge translation plus data-path latency.
 *
 * A warmup phase runs before statistics are reset, so reported rates
 * are steady-state.
 */

#ifndef POMTLB_SIM_ENGINE_HH
#define POMTLB_SIM_ENGINE_HH

#include <vector>

#include "common/types.hh"
#include "sim/machine.hh"
#include "trace/profile.hh"
#include "trace/source.hh"

namespace pomtlb
{

/** Engine run parameters. */
struct EngineConfig
{
    /** Measured references per core. */
    std::uint64_t refsPerCore = 150000;
    /** Warmup references per core (stats reset afterwards). */
    std::uint64_t warmupRefsPerCore = 120000;
    /** VM each core's workload runs in (resized to core count). */
    std::vector<VmId> coreVm;
    /** Process id base: core c runs as pid base + c. */
    ProcessId pidBase = 1;
    /** Trace seed (combined with the system seed). */
    std::uint64_t seed = 42;
    /**
     * TLB shootdown injection (Section 2.2): every
     * @c shootdownIntervalRefs references machine-wide, the page of
     * the triggering reference is shot down across all cores and the
     * initiating core is charged @c shootdownCycles (IPI + handler
     * cost). 0 disables injection (the paper notes shootdowns are
     * rare; this knob quantifies "rare").
     */
    std::uint64_t shootdownIntervalRefs = 0;
    Cycles shootdownCycles = 500;
    /**
     * Steady-state pre-population: before timed simulation, a dry
     * enumeration of the whole trace installs every touched page in
     * the page tables and in the scheme's persistent translation
     * store (POM-TLB / TSB). This models workloads that have run far
     * longer than the simulated window — the regime the paper
     * measures — so first-touch cold misses do not pollute the
     * steady-state statistics. SRAM TLBs and data caches still warm
     * up normally during the warmup phase.
     */
    bool prepopulate = true;
};

/** Per-core results of a run. */
struct CoreRunStats
{
    std::uint64_t refs = 0;
    InstCount instructions = 0;
    Cycles cycles = 0;
    /** Post-L1-TLB translation cycles (T_post in DESIGN.md). */
    std::uint64_t translationCycles = 0;
    std::uint64_t l1TlbHits = 0;
    std::uint64_t l2TlbHits = 0;
    std::uint64_t lastLevelTlbMisses = 0;
    /** Average scheme cycles per last-level TLB miss (the paper's P). */
    double avgPenaltyPerMiss = 0.0;
    std::uint64_t pageWalks = 0;
    std::uint64_t shootdowns = 0;
};

/** Whole-run results. */
struct RunResult
{
    std::vector<CoreRunStats> cores;

    std::uint64_t totalTranslationCycles() const;
    std::uint64_t totalLastLevelMisses() const;
    std::uint64_t totalRefs() const;
    std::uint64_t totalPageWalks() const;
    std::uint64_t totalShootdowns() const;
    /** Machine-wide average penalty per last-level TLB miss. */
    double avgPenaltyPerMiss() const;
    /** Fraction of last-level TLB misses that needed a page walk. */
    double walkFraction() const;
};

/** Drives one benchmark through one machine. */
class SimulationEngine
{
  public:
    /**
     * @param machine  The machine to drive (state persists between
     *                 run() calls; construct fresh machines for
     *                 independent experiments).
     * @param profile  Benchmark to generate traces for.
     * @param config   Run length, warmup, VM placement, seed.
     */
    SimulationEngine(Machine &machine, const BenchmarkProfile &profile,
                     const EngineConfig &config);

    /**
     * Drive the machine from externally supplied trace sources (one
     * per core — e.g. recorded trace files). @p profile supplies the
     * workload metadata (multithreaded/pid policy and the Table 2
     * constants used by the performance model).
     */
    SimulationEngine(Machine &machine, const BenchmarkProfile &profile,
                     const EngineConfig &config,
                     std::vector<std::unique_ptr<TraceSource>> sources);

    /** Run warmup + measured phases; returns measured-phase stats. */
    RunResult run();

  private:
    /** Advance the lowest-clock core by one reference. */
    void step(std::vector<Cycles> &clocks,
              std::vector<std::uint64_t> &refs_done,
              std::uint64_t target_refs);

    /** Dry-run the whole trace to pre-install steady-state pages. */
    void prepopulate();

    Machine &machine;
    BenchmarkProfile profile;
    EngineConfig engineConfig;
    std::vector<std::unique_ptr<TraceSource>> sources;
    std::vector<VmId> coreVm;
    std::vector<InstCount> instructions;
    std::vector<std::uint64_t> pageWalks;
    std::vector<std::uint64_t> shootdowns;
    std::uint64_t refsSinceShootdown = 0;
};

} // namespace pomtlb

#endif // POMTLB_SIM_ENGINE_HH

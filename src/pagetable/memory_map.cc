#include "pagetable/memory_map.hh"

#include "common/log.hh"

namespace pomtlb
{

namespace
{
/** Skip frame 0 so a zero address never aliases a real frame. */
constexpr Addr firstFrame = 0x1000;
} // namespace

MemoryMap::MemoryMap(const MemoryMapConfig &config) : mapConfig(config)
{
    simAssert(config.hostPhysBytes > firstFrame,
              "host physical space too small");
    hostFrames = std::make_unique<FrameAllocator>(
        firstFrame, config.hostPhysBytes);
}

MemoryMap::VmState &
MemoryMap::vmState(VmId vm)
{
    auto it = vms.find(vm);
    if (it != vms.end())
        return it->second;

    VmState state;
    if (mapConfig.mode == ExecMode::Virtualized) {
        state.guestFrames = std::make_unique<FrameAllocator>(
            firstFrame, mapConfig.guestPhysBytes);
        state.hostTable = std::make_unique<RadixPageTable>(
            "ept.vm" + std::to_string(vm), *hostFrames);
    }
    return vms.emplace(vm, std::move(state)).first->second;
}

RadixPageTable &
MemoryMap::guestTable(VmId vm, ProcessId pid)
{
    VmState &state = vmState(vm);
    auto it = state.guestTables.find(pid);
    if (it != state.guestTables.end())
        return *it->second;

    // Guest table nodes live in guest-physical space (virtualized) or
    // directly in host-physical space (native).
    FrameAllocator &node_frames =
        mapConfig.mode == ExecMode::Virtualized ? *state.guestFrames
                                                : *hostFrames;
    auto table = std::make_unique<RadixPageTable>(
        "pt.vm" + std::to_string(vm) + ".pid" + std::to_string(pid),
        node_frames);
    RadixPageTable &ref = *table;
    state.guestTables.emplace(pid, std::move(table));
    return ref;
}

RadixPageTable &
MemoryMap::hostTable(VmId vm)
{
    if (mapConfig.mode != ExecMode::Virtualized)
        fatal("hostTable() is only meaningful in virtualized mode");
    return *vmState(vm).hostTable;
}

TranslationInfo
MemoryMap::ensureMapped(VmId vm, ProcessId pid, Addr vaddr,
                        PageSize size)
{
    TranslationInfo info;
    info.size = size;

    RadixPageTable &guest = guestTable(vm, pid);
    VmState &state = vmState(vm);

    RadixWalkPath guest_path = guest.walk(vaddr);
    GuestPhysAddr gpa_page;
    if (guest_path.present) {
        simAssert(guest_path.size == size,
                  "page-size conflict for a previously mapped region");
        gpa_page = guest_path.pfn << pageShift(size);
    } else {
        FrameAllocator &data_frames =
            mapConfig.mode == ExecMode::Virtualized ? *state.guestFrames
                                                    : *hostFrames;
        gpa_page = data_frames.allocate(size);
        guest.map(pageNumber(vaddr, size), size,
                  gpa_page >> pageShift(size));
    }
    info.gpa = gpa_page | pageOffset(vaddr, size);

    if (mapConfig.mode == ExecMode::Native) {
        info.hpa = info.gpa;
        return info;
    }

    RadixPageTable &host = *state.hostTable;
    RadixWalkPath host_path = host.walk(gpa_page);
    HostPhysAddr hpa_page;
    if (host_path.present) {
        hpa_page = host_path.pfn << pageShift(host_path.size);
        hpa_page |= pageOffset(gpa_page, host_path.size) &
                    ~(pageBytes(size) - 1);
    } else {
        hpa_page = hostFrames->allocate(size);
        host.map(pageNumber(gpa_page, size), size,
                 hpa_page >> pageShift(size));
    }
    info.hpa = hpa_page | pageOffset(vaddr, size);
    return info;
}

HostPhysAddr
MemoryMap::hostTranslate(VmId vm, GuestPhysAddr gpa)
{
    if (mapConfig.mode == ExecMode::Native)
        return gpa;

    RadixPageTable &host = *vmState(vm).hostTable;
    RadixWalkPath path = host.walk(gpa);
    if (path.present) {
        return (path.pfn << pageShift(path.size)) |
               pageOffset(gpa, path.size);
    }

    // Lazily back page-table node frames with 4 KB host pages.
    const HostPhysAddr hpa_page = hostFrames->allocate(PageSize::Small4K);
    host.map(pageNumber(gpa, PageSize::Small4K), PageSize::Small4K,
             hpa_page >> smallPageShift);
    return hpa_page | pageOffset(gpa, PageSize::Small4K);
}

bool
MemoryMap::unmapPage(VmId vm, ProcessId pid, Addr vaddr, PageSize)
{
    return guestTable(vm, pid).unmap(vaddr);
}

} // namespace pomtlb

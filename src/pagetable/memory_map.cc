#include "pagetable/memory_map.hh"

#include "common/log.hh"

namespace pomtlb
{

namespace
{
/** Skip frame 0 so a zero address never aliases a real frame. */
constexpr Addr firstFrame = 0x1000;
} // namespace

MemoryMap::MemoryMap(const MemoryMapConfig &config) : mapConfig(config)
{
    simAssert(config.hostPhysBytes > firstFrame,
              "host physical space too small");
    hostFrames = std::make_unique<FrameAllocator>(
        firstFrame, config.hostPhysBytes);
}

MemoryMap::VmState &
MemoryMap::vmState(VmId vm)
{
    if (vm < vmCache.size() && vmCache[vm] != nullptr)
        return *vmCache[vm];

    auto it = vms.find(vm);
    if (it == vms.end()) {
        VmState state;
        if (mapConfig.mode == ExecMode::Virtualized) {
            state.guestFrames = std::make_unique<FrameAllocator>(
                firstFrame, mapConfig.guestPhysBytes);
            state.hostTable = std::make_unique<RadixPageTable>(
                "ept.vm" + std::to_string(vm), *hostFrames);
        }
        it = vms.emplace(vm, std::move(state)).first;
    }
    // std::map nodes are stable, so the cached pointer stays valid.
    if (vm >= vmCache.size())
        vmCache.resize(vm + 1, nullptr);
    vmCache[vm] = &it->second;
    return it->second;
}

MemoryMap::SpaceEntry &
MemoryMap::spaceEntry(VmId vm, ProcessId pid)
{
    const std::uint64_t raw =
        (static_cast<std::uint64_t>(vm) << 16) | pid;
    if (raw == lastSpaceKey)
        return *lastSpace;

    const std::uint64_t key = mix64(raw);
    SpaceEntry *entry;
    if (const std::uint64_t *index = spaceMap.find(key)) {
        entry = spaces[*index].get();
    } else {
        entry = spaces.emplace_back(std::make_unique<SpaceEntry>())
                    .get();
        entry->vm = &vmState(vm);
        entry->table = &guestTableSlow(vm, pid);
        spaceMap.insert(key, spaces.size() - 1);
    }
    lastSpaceKey = raw;
    lastSpace = entry;
    return *entry;
}

RadixPageTable &
MemoryMap::guestTable(VmId vm, ProcessId pid)
{
    return *spaceEntry(vm, pid).table;
}

RadixPageTable &
MemoryMap::guestTableSlow(VmId vm, ProcessId pid)
{
    VmState &state = vmState(vm);
    auto it = state.guestTables.find(pid);
    if (it != state.guestTables.end())
        return *it->second;

    // Guest table nodes live in guest-physical space (virtualized) or
    // directly in host-physical space (native).
    FrameAllocator &node_frames =
        mapConfig.mode == ExecMode::Virtualized ? *state.guestFrames
                                                : *hostFrames;
    auto table = std::make_unique<RadixPageTable>(
        "pt.vm" + std::to_string(vm) + ".pid" + std::to_string(pid),
        node_frames);
    RadixPageTable &ref = *table;
    state.guestTables.emplace(pid, std::move(table));
    return ref;
}

RadixPageTable &
MemoryMap::hostTable(VmId vm)
{
    if (mapConfig.mode != ExecMode::Virtualized)
        fatal("hostTable() is only meaningful in virtualized mode");
    return *vmState(vm).hostTable;
}

TranslationInfo
MemoryMap::ensureMapped(VmId vm, ProcessId pid, Addr vaddr,
                        PageSize size)
{
    TranslationInfo info;
    info.size = size;

    SpaceEntry &space = spaceEntry(vm, pid);

    // Fast path: this page was resolved before. The memo key encodes
    // (vpn, size) exactly and mix64 is a bijection, so a hit is
    // definitive — rebuild the result from the cached page bases.
    const std::uint64_t memo_key = mix64(
        (pageNumber(vaddr, size) << 1) |
        (size == PageSize::Large2M ? 1u : 0u));
    if (const PageMemoMap::Slot *memo = space.memo.find(memo_key)) {
        info.gpa = memo->gpaPage | pageOffset(vaddr, size);
        info.hpa = memo->hpaPage | pageOffset(vaddr, size);
        return info;
    }

    RadixPageTable &guest = *space.table;
    VmState &state = *space.vm;

    RadixWalkPath guest_path = guest.walk(vaddr);
    GuestPhysAddr gpa_page;
    if (guest_path.present) {
        simAssert(guest_path.size == size,
                  "page-size conflict for a previously mapped region");
        gpa_page = guest_path.pfn << pageShift(size);
    } else {
        FrameAllocator &data_frames =
            mapConfig.mode == ExecMode::Virtualized ? *state.guestFrames
                                                    : *hostFrames;
        gpa_page = data_frames.allocate(size);
        guest.map(pageNumber(vaddr, size), size,
                  gpa_page >> pageShift(size));
    }
    info.gpa = gpa_page | pageOffset(vaddr, size);

    if (mapConfig.mode == ExecMode::Native) {
        info.hpa = info.gpa;
        space.memo.insert(memo_key, gpa_page, gpa_page);
        return info;
    }

    RadixPageTable &host = *state.hostTable;
    RadixWalkPath host_path = host.walk(gpa_page);
    HostPhysAddr hpa_page;
    if (host_path.present) {
        hpa_page = host_path.pfn << pageShift(host_path.size);
        hpa_page |= pageOffset(gpa_page, host_path.size) &
                    ~(pageBytes(size) - 1);
    } else {
        hpa_page = hostFrames->allocate(size);
        host.map(pageNumber(gpa_page, size), size,
                 hpa_page >> pageShift(size));
    }
    info.hpa = hpa_page | pageOffset(vaddr, size);
    space.memo.insert(memo_key, gpa_page, hpa_page);
    return info;
}

HostPhysAddr
MemoryMap::hostTranslate(VmId vm, GuestPhysAddr gpa)
{
    if (mapConfig.mode == ExecMode::Native)
        return gpa;

    RadixPageTable &host = *vmState(vm).hostTable;
    RadixWalkPath path = host.walk(gpa);
    if (path.present) {
        return (path.pfn << pageShift(path.size)) |
               pageOffset(gpa, path.size);
    }

    // Lazily back page-table node frames with 4 KB host pages.
    const HostPhysAddr hpa_page = hostFrames->allocate(PageSize::Small4K);
    host.map(pageNumber(gpa, PageSize::Small4K), PageSize::Small4K,
             hpa_page >> smallPageShift);
    return hpa_page | pageOffset(gpa, PageSize::Small4K);
}

bool
MemoryMap::unmapPage(VmId vm, ProcessId pid, Addr vaddr, PageSize)
{
    SpaceEntry &space = spaceEntry(vm, pid);
    const bool removed = space.table->unmap(vaddr);
    // Shootdowns are rare (one per ~10^5 refs at most in the paper's
    // sweeps), so dropping the space's whole memo beats tracking
    // per-page keys. Host backings are never torn down, so the
    // hostBacked set stays valid.
    if (removed)
        space.memo.clear();
    return removed;
}

} // namespace pomtlb

#include "pagetable/psc.hh"

#include "common/log.hh"

namespace pomtlb
{

namespace
{

/**
 * An entry cached for level L covers the VA region that one entry of
 * that level maps: PDE -> 2 MB (bit 21), PDPE -> 1 GB (bit 30),
 * PML4E -> 512 GB (bit 39).
 */
unsigned
coverageShift(WalkLevel level)
{
    switch (level) {
      case WalkLevel::Pd:
        return 21;
      case WalkLevel::Pdpt:
        return 30;
      case WalkLevel::Pml4:
        return 39;
      case WalkLevel::Pt:
        break;
    }
    panic("PT-level entries are TLB entries, not PSC entries");
}

} // namespace

StructureCache::StructureCache(unsigned capacity, WalkLevel cached_level)
    : cachedLevel(cached_level), entries(capacity)
{
    simAssert(capacity > 0, "structure cache needs capacity");
}

std::uint64_t
StructureCache::tagOf(Addr addr) const
{
    return addr >> coverageShift(cachedLevel);
}

bool
StructureCache::lookup(Addr addr, VmId vm, ProcessId pid)
{
    const std::uint64_t tag = tagOf(addr);
    for (auto &entry : entries) {
        if (entry.valid && entry.vm == vm && entry.pid == pid &&
            entry.tag == tag) {
            entry.stamp = ++clock;
            ++hitCount;
            return true;
        }
    }
    ++missCount;
    return false;
}

void
StructureCache::insert(Addr addr, VmId vm, ProcessId pid)
{
    const std::uint64_t tag = tagOf(addr);
    Entry *victim = &entries[0];
    for (auto &entry : entries) {
        if (entry.valid && entry.vm == vm && entry.pid == pid &&
            entry.tag == tag) {
            entry.stamp = ++clock;
            return;
        }
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (entry.stamp < victim->stamp)
            victim = &entry;
    }
    victim->valid = true;
    victim->vm = vm;
    victim->pid = pid;
    victim->tag = tag;
    victim->stamp = ++clock;
}

void
StructureCache::invalidateVm(VmId vm)
{
    for (auto &entry : entries) {
        if (entry.valid && entry.vm == vm)
            entry.valid = false;
    }
}

void
StructureCache::flush()
{
    for (auto &entry : entries)
        entry.valid = false;
}

PscSet::PscSet(const PscConfig &config)
    : pml4(config.pml4Entries, WalkLevel::Pml4),
      pdp(config.pdpEntries, WalkLevel::Pdpt),
      pde(config.pdeEntries, WalkLevel::Pd),
      latency(config.accessLatency)
{
}

PscProbeResult
PscSet::probe(Addr addr, VmId vm, ProcessId pid)
{
    PscProbeResult result;
    result.cycles = latency; // all three are probed in parallel

    if (pde.lookup(addr, vm, pid)) {
        result.deepestHitLevel = 2;
        return result;
    }
    if (pdp.lookup(addr, vm, pid)) {
        result.deepestHitLevel = 3;
        return result;
    }
    if (pml4.lookup(addr, vm, pid)) {
        result.deepestHitLevel = 4;
        return result;
    }
    result.deepestHitLevel = 0;
    return result;
}

void
PscSet::fill(Addr addr, VmId vm, ProcessId pid, unsigned level)
{
    switch (level) {
      case 4:
        pml4.insert(addr, vm, pid);
        break;
      case 3:
        pdp.insert(addr, vm, pid);
        break;
      case 2:
        pde.insert(addr, vm, pid);
        break;
      default:
        // Level-1 (PT) entries are full translations; those belong in
        // the TLBs, not the structure caches.
        break;
    }
}

void
PscSet::invalidateVm(VmId vm)
{
    pml4.invalidateVm(vm);
    pdp.invalidateVm(vm);
    pde.invalidateVm(vm);
}

void
PscSet::flush()
{
    pml4.flush();
    pdp.flush();
    pde.flush();
}

} // namespace pomtlb

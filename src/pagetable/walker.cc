#include "pagetable/walker.hh"

#include "common/log.hh"

namespace pomtlb
{

namespace
{

/** First table level to read after a PSC probe: 4 with no hit, one
 *  below the deepest cached entry otherwise. */
unsigned
firstReadLevel(const PscProbeResult &probe)
{
    return probe.deepestHitLevel == 0 ? 4 : probe.deepestHitLevel - 1;
}

} // namespace

namespace
{

TlbConfig
nestedTlbConfig(const PscConfig &psc_config, CoreId core)
{
    // No core suffix: the nested TLB's group nests under the owning
    // walker's "walker.<core>" group, which carries the core id.
    (void)core;
    TlbConfig config;
    config.name = "nested_tlb";
    config.entries = psc_config.nestedTlbEntries;
    config.associativity = psc_config.nestedTlbAssociativity;
    config.missPenalty = 0;
    config.accessLatency = psc_config.nestedTlbLatency;
    return config;
}

} // namespace

PageWalker::PageWalker(CoreId core, MemoryMap &memory_map,
                       DataHierarchy &hierarchy,
                       const PscConfig &psc_config)
    : coreId(core),
      memoryMap(memory_map),
      dataHierarchy(hierarchy),
      guestPsc(psc_config),
      nestedTlb(nestedTlbConfig(psc_config, core)),
      nestedTlbLatency(psc_config.nestedTlbLatency),
      statGroup("walker." + std::to_string(core))
{
    statGroup.addCounter("walks", walks);
    statGroup.addAverage("avg_refs_per_walk", refsPerWalk);
    statGroup.addAverage("avg_cycles_per_walk", cyclesPerWalk);
    statGroup.addDerived("psc_pml4_hits", [this] {
        return static_cast<double>(guestPsc.pml4Cache().hits());
    });
    statGroup.addDerived("psc_pml4_misses", [this] {
        return static_cast<double>(guestPsc.pml4Cache().misses());
    });
    statGroup.addDerived("psc_pdp_hits", [this] {
        return static_cast<double>(guestPsc.pdpCache().hits());
    });
    statGroup.addDerived("psc_pdp_misses", [this] {
        return static_cast<double>(guestPsc.pdpCache().misses());
    });
    statGroup.addDerived("psc_pde_hits", [this] {
        return static_cast<double>(guestPsc.pdeCache().hits());
    });
    statGroup.addDerived("psc_pde_misses", [this] {
        return static_cast<double>(guestPsc.pdeCache().misses());
    });
    statGroup.addHistogram("walk_cycle_hist", walkCycleHist);
    statGroup.addHistogram("walk_ref_hist", walkRefHist);
    statGroup.addChild(nestedTlb.stats());
}

WalkResult
PageWalker::walk(Addr vaddr, VmId vm, ProcessId pid, PageSize size,
                 Cycles now)
{
    // Idealised OS: the page exists by the time the walker runs.
    memoryMap.ensureMapped(vm, pid, vaddr, size);

    WalkResult result = memoryMap.mode() == ExecMode::Native
                            ? walkNative(vaddr, vm, pid, now)
                            : walkVirtualized(vaddr, vm, pid, now);

    ++walks;
    refsPerWalk.sample(static_cast<double>(result.memRefs));
    cyclesPerWalk.sample(static_cast<double>(result.cycles));
    if (StatsRegistry::detail()) {
        walkCycleHist.sample(result.cycles);
        walkRefHist.sample(result.memRefs);
    }
    return result;
}

PageWalker::HostWalkResult
PageWalker::hostWalk(GuestPhysAddr gpa, VmId vm, Cycles now)
{
    HostWalkResult result;

    // Guest page-table node frames are backed lazily by the
    // hypervisor model; make sure this gPA has a host mapping before
    // the timed walk (costless OS work, identical for all schemes).
    memoryMap.ensureHostBacked(vm, gpa);

    // The nested TLB caches complete gPA -> hPA translations; a hit
    // short-circuits this host walk entirely (the EPT is per-VM, so
    // pid 0 tags its entries).
    result.cycles += nestedTlbLatency;
    const PageNum gpa_vpn = pageNumber(gpa, PageSize::Small4K);
    const TlbLookupResult nested =
        nestedTlb.lookup(gpa_vpn, PageSize::Small4K, vm, 0);
    if (nested.hit) {
        result.hpa = (nested.pfn << smallPageShift) |
                     pageOffset(gpa, PageSize::Small4K);
        return result;
    }

    RadixPageTable &ept = memoryMap.hostTable(vm);
    RadixWalkPath path = ept.walk(gpa);
    simAssert(path.present, "host walk of an unbacked guest frame");

    for (unsigned i = 0; i < path.reads; ++i) {
        const HierarchyAccessResult access = dataHierarchy.accessPte(
            coreId, path.pteAddr[i], now + result.cycles);
        result.cycles += access.latency;
        ++result.refs;
    }

    result.hpa = (path.pfn << pageShift(path.size)) |
                 pageOffset(gpa, path.size);
    nestedTlb.insert(gpa_vpn, PageSize::Small4K, vm, 0,
                     result.hpa >> smallPageShift);
    return result;
}

WalkResult
PageWalker::walkNative(Addr vaddr, VmId vm, ProcessId pid, Cycles now)
{
    WalkResult result;

    const PscProbeResult probe = guestPsc.probe(vaddr, vm, pid);
    result.cycles += probe.cycles;

    RadixPageTable &table = memoryMap.guestTable(vm, pid);
    RadixWalkPath path = table.walk(vaddr, firstReadLevel(probe));
    simAssert(path.present, "native walk of an unmapped page");

    for (unsigned i = 0; i < path.reads; ++i) {
        const HierarchyAccessResult access = dataHierarchy.accessPte(
            coreId, path.pteAddr[i], now + result.cycles);
        result.cycles += access.latency;
        ++result.memRefs;
        const bool is_leaf = (i + 1 == path.reads);
        if (!is_leaf)
            guestPsc.fill(vaddr, vm, pid, path.pteLevel[i]);
    }

    result.hostPfn = path.pfn;
    result.size = path.size;
    return result;
}

WalkResult
PageWalker::walkVirtualized(Addr vaddr, VmId vm, ProcessId pid,
                            Cycles now)
{
    WalkResult result;

    const PscProbeResult probe = guestPsc.probe(vaddr, vm, pid);
    result.cycles += probe.cycles;

    RadixPageTable &guest = memoryMap.guestTable(vm, pid);
    RadixWalkPath path = guest.walk(vaddr, firstReadLevel(probe));
    simAssert(path.present, "virtualized walk of an unmapped page");

    // Each guest PTE read needs its own host walk of the PTE's gPA
    // (Figure 1: hL4..hL1 then gLi, repeated per guest level).
    for (unsigned i = 0; i < path.reads; ++i) {
        const GuestPhysAddr gpte_gpa = path.pteAddr[i];
        const HostWalkResult host = hostWalk(
            gpte_gpa, vm, now + result.cycles);
        result.cycles += host.cycles;
        result.memRefs += host.refs;

        const HierarchyAccessResult access = dataHierarchy.accessPte(
            coreId, host.hpa, now + result.cycles);
        result.cycles += access.latency;
        ++result.memRefs;

        const bool is_leaf = (i + 1 == path.reads);
        if (!is_leaf)
            guestPsc.fill(vaddr, vm, pid, path.pteLevel[i]);
    }

    // Final host walk: translate the data page's guest-physical
    // address to host-physical (Figure 1 steps 21-24).
    const GuestPhysAddr data_gpa =
        (path.pfn << pageShift(path.size)) |
        pageOffset(vaddr, path.size);
    const HostWalkResult host = hostWalk(
        data_gpa, vm, now + result.cycles);
    result.cycles += host.cycles;
    result.memRefs += host.refs;

    result.hostPfn = host.hpa >> pageShift(path.size);
    result.size = path.size;
    return result;
}

void
PageWalker::invalidateVm(VmId vm)
{
    guestPsc.invalidateVm(vm);
    nestedTlb.invalidateVm(vm);
}

void
PageWalker::resetStats()
{
    walks.reset();
    refsPerWalk.reset();
    cyclesPerWalk.reset();
    walkCycleHist.reset();
    walkRefHist.reset();
    guestPsc.resetStats();
    nestedTlb.resetStats();
}

} // namespace pomtlb

/**
 * @file
 * MMU page-structure caches (PSCs), Table 1: PML4E (2 entries),
 * PDPE (4 entries), PDE (32 entries), each a 2-cycle fully-associative
 * LRU structure.
 *
 * A PSC entry caches one non-leaf page-table entry, keyed by the
 * address bits that index the levels *above* it. A PDE-cache hit lets
 * the walker skip straight to the last-level table read. Each core has
 * two PSC sets: one indexed by guest-virtual addresses accelerating
 * the guest dimension of the walk, and one indexed by guest-physical
 * addresses accelerating every host (EPT) walk — which together model
 * the combined paging-structure/nested-TLB support the paper's
 * baseline Skylake machine has.
 */

#ifndef POMTLB_PAGETABLE_PSC_HH
#define POMTLB_PAGETABLE_PSC_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pomtlb
{

/**
 * Page-table levels, numbered as x86 does: 4 = PML4 (root),
 * 3 = PDPT, 2 = PD, 1 = PT (last level for 4 KB pages).
 */
enum class WalkLevel : std::uint8_t
{
    Pml4 = 4,
    Pdpt = 3,
    Pd = 2,
    Pt = 1,
};

/** One fully-associative structure cache for a single level. */
class StructureCache
{
  public:
    StructureCache(unsigned capacity, WalkLevel cached_level);

    /**
     * Look up the cached entry covering @p addr for (vm, pid).
     * Returns true on hit (and refreshes LRU).
     */
    bool lookup(Addr addr, VmId vm, ProcessId pid);

    /** Insert/refresh the entry covering @p addr. */
    void insert(Addr addr, VmId vm, ProcessId pid);

    /** Drop all entries of @p vm (shootdown). */
    void invalidateVm(VmId vm);

    /** Drop everything. */
    void flush();

    /** Probe hits since the stats reset. */
    std::uint64_t hits() const { return hitCount.value(); }
    /** Probe misses since the stats reset. */
    std::uint64_t misses() const { return missCount.value(); }
    /** The page-table level this cache accelerates. */
    WalkLevel level() const { return cachedLevel; }

    /** Zero the hit/miss counters (entries stay). */
    void
    resetStats()
    {
        hitCount.reset();
        missCount.reset();
    }

  private:
    /** Tag: the VA bits indexing this level and everything above. */
    std::uint64_t tagOf(Addr addr) const;

    struct Entry
    {
        bool valid = false;
        VmId vm = 0;
        ProcessId pid = 0;
        std::uint64_t tag = 0;
        std::uint64_t stamp = 0;
    };

    WalkLevel cachedLevel;
    std::vector<Entry> entries;
    std::uint64_t clock = 0;
    Counter hitCount;
    Counter missCount;
};

/**
 * The result of consulting a PSC set before a radix walk: how many
 * upper levels can be skipped.
 */
struct PscProbeResult
{
    /**
     * Deepest level whose entry was found, 0 when nothing hit.
     * A value of 2 (PDE hit) means reads start at the PT level.
     */
    unsigned deepestHitLevel = 0;
    /** Cycles spent probing (every probe costs the PSC latency). */
    Cycles cycles = 0;
};

/** The per-core trio of structure caches (PML4E/PDPE/PDE). */
class PscSet
{
  public:
    explicit PscSet(const PscConfig &config);

    /**
     * Probe caches from the deepest (PDE) upward for @p addr; the
     * first hit wins. Misses still cost the probe latency, modelling
     * the serial check before the walk engages.
     */
    PscProbeResult probe(Addr addr, VmId vm, ProcessId pid);

    /**
     * After a walk read the entry at @p level for @p addr, cache it
     * (only non-leaf levels 2..4 are cacheable).
     */
    void fill(Addr addr, VmId vm, ProcessId pid, unsigned level);

    /** Drop all of @p vm's entries from every level cache. */
    void invalidateVm(VmId vm);
    /** Drop every entry (full flush). */
    void flush();

    /** Zero every level cache's counters. */
    void
    resetStats()
    {
        pml4.resetStats();
        pdp.resetStats();
        pde.resetStats();
    }

    /** The PML4E-level cache. */
    const StructureCache &pml4Cache() const { return pml4; }
    /** The PDPE-level cache. */
    const StructureCache &pdpCache() const { return pdp; }
    /** The PDE-level cache. */
    const StructureCache &pdeCache() const { return pde; }

  private:
    StructureCache pml4;
    StructureCache pdp;
    StructureCache pde;
    Cycles latency;
};

} // namespace pomtlb

#endif // POMTLB_PAGETABLE_PSC_HH

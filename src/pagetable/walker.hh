/**
 * @file
 * The hardware page-table walker: 1D (native) and 2D (virtualized)
 * walks, accelerated by per-core page-structure caches, with every
 * PTE read going through the data-cache hierarchy (PTEs are cached in
 * L2D$/L3D$ like any other data, as on real x86).
 *
 * The 2D walk follows Figure 1: each of the four guest-table reads
 * requires a host (EPT) walk of the guest PTE's guest-physical
 * address, and the final data gPA requires one more host walk —
 * up to 24 memory references when every structure cache misses.
 */

#ifndef POMTLB_PAGETABLE_WALKER_HH
#define POMTLB_PAGETABLE_WALKER_HH

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "pagetable/memory_map.hh"
#include "pagetable/psc.hh"
#include "tlb/tlb.hh"

namespace pomtlb
{

/** Result of one full translation walk. */
struct WalkResult
{
    /** Core cycles from walk start to final translation. */
    Cycles cycles = 0;
    /** PTE memory references performed (<= 24 virtualized, <= 4 native). */
    unsigned memRefs = 0;
    /** The final host-physical frame number. */
    PageNum hostPfn = 0;
    /** Page size of the translated page. */
    PageSize size = PageSize::Small4K;
};

/** A per-core page-table walker with PSC acceleration. */
class PageWalker
{
  public:
    /**
     * @param core      Owning core (cache routing).
     * @param memory_map OS substrate providing the page tables.
     * @param hierarchy Data caches PTE reads travel through.
     * @param psc_config Structure-cache geometry (Table 1).
     */
    PageWalker(CoreId core, MemoryMap &memory_map,
               DataHierarchy &hierarchy, const PscConfig &psc_config);

    /**
     * Translate @p vaddr for (vm, pid) at @p size, performing a
     * native 1D or virtualized 2D walk depending on the memory map's
     * mode. The page is demand-mapped if absent (costless OS model).
     */
    WalkResult walk(Addr vaddr, VmId vm, ProcessId pid, PageSize size,
                    Cycles now);

    /** Shootdown support: drop a VM's structure-cache entries. */
    void invalidateVm(VmId vm);

    /** Walks performed since the stats reset. */
    std::uint64_t walkCount() const { return walks.value(); }
    /** Mean PTE memory references per walk. */
    double avgRefsPerWalk() const { return refsPerWalk.mean(); }
    /** Mean cycles per walk. */
    double avgCyclesPerWalk() const { return cyclesPerWalk.mean(); }
    /** The guest-VA-indexed structure caches. */
    const PscSet &guestPscSet() const { return guestPsc; }
    /** The nested (EPT) gPA -> hPA TLB. */
    const SetAssocTlb &nestedTlbCache() const { return nestedTlb; }

    /** This walker's statistics group ("walker.<core>"). */
    const StatGroup &stats() const { return statGroup; }

    /** Zero walker, PSC, and nested-TLB statistics. */
    void resetStats();

  private:
    /** Outcome of one host (EPT) walk. */
    struct HostWalkResult
    {
        HostPhysAddr hpa = 0;
        Cycles cycles = 0;
        unsigned refs = 0;
    };

    /** One host (EPT) walk of @p gpa starting at absolute time @p now. */
    HostWalkResult hostWalk(GuestPhysAddr gpa, VmId vm, Cycles now);

    WalkResult walkNative(Addr vaddr, VmId vm, ProcessId pid,
                          Cycles now);
    WalkResult walkVirtualized(Addr vaddr, VmId vm, ProcessId pid,
                               Cycles now);

    CoreId coreId;
    MemoryMap &memoryMap;
    DataHierarchy &dataHierarchy;
    /** Guest-VA-indexed PSC (guest dimension of the walk). */
    PscSet guestPsc;
    /** Small nested TLB caching gPA -> hPA translations (EPT side). */
    SetAssocTlb nestedTlb;
    Cycles nestedTlbLatency;

    Counter walks;
    Average refsPerWalk;
    Average cyclesPerWalk;
    /** Distribution of walk latencies (log2 buckets). */
    Log2Histogram walkCycleHist;
    /** Distribution of PTE references per walk (log2 buckets). */
    Log2Histogram walkRefHist;
    StatGroup statGroup;
};

} // namespace pomtlb

#endif // POMTLB_PAGETABLE_WALKER_HH

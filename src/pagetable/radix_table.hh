/**
 * @file
 * A 4-level x86-style radix page table living in a simulated physical
 * address space.
 *
 * Two instances per VM dimension exist in a virtualized machine:
 * guest tables (one per process) map gVA -> gPA and their node frames
 * are themselves guest-physical; the host (EPT) table maps gPA -> hPA
 * and its frames are host-physical. The walker only needs the
 * *addresses* of the PTEs it reads — the table hands back the full
 * per-level read list for a walk.
 */

#ifndef POMTLB_PAGETABLE_RADIX_TABLE_HH
#define POMTLB_PAGETABLE_RADIX_TABLE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace pomtlb
{

/** Allocates page frames sequentially from a base address. */
class FrameAllocator
{
  public:
    /**
     * @param base  First byte this allocator may hand out.
     * @param limit One past the last byte (fatal on exhaustion).
     */
    FrameAllocator(Addr base, Addr limit);

    /** Allocate one naturally-aligned frame of @p size. */
    Addr allocate(PageSize size);

    /** Allocate one 4 KB frame for a page-table node. */
    Addr allocateTableNode();

    Addr bytesAllocated() const { return next - baseAddr; }
    Addr base() const { return baseAddr; }

  private:
    Addr baseAddr;
    Addr next;
    Addr limit;
};

/** The per-level PTE reads a radix walk performs. */
struct RadixWalkPath
{
    /** Table-space addresses of the PTEs read, root first. */
    std::array<Addr, 4> pteAddr{};
    /** Page-table level of each read (4 = PML4 ... 1 = PT). */
    std::array<unsigned, 4> pteLevel{};
    /** Number of valid reads (4 for 4 KB leaves, 3 for 2 MB). */
    unsigned reads = 0;
    /** Whether a translation exists. */
    bool present = false;
    /** Leaf translation (valid when present). */
    PageNum pfn = 0;
    PageSize size = PageSize::Small4K;
};

/** A 4-level radix page table. */
class RadixPageTable
{
  public:
    /**
     * @param name      For diagnostics.
     * @param allocator Frame allocator for table nodes (must outlive
     *                  the table).
     */
    RadixPageTable(std::string name, FrameAllocator &allocator);

    /**
     * Install the translation vpn -> pfn at @p size, creating
     * intermediate nodes as needed. Remapping an existing page to a
     * new frame is allowed; changing a region's page size is not.
     */
    void map(PageNum vpn, PageSize size, PageNum pfn);

    /** Is the page containing @p vaddr mapped (at any size)? */
    bool isMapped(Addr vaddr) const;

    /**
     * Produce the PTE reads required to translate @p vaddr,
     * starting at @p first_level (4 normally; lower after a PSC hit).
     */
    RadixWalkPath walk(Addr vaddr, unsigned first_level = 4) const;

    /** Remove a translation; returns false if it was absent. */
    bool unmap(Addr vaddr);

    /** Table-space address of the root (CR3/EPTP analogue). */
    Addr rootAddr() const { return root->frame; }

    std::uint64_t mappedPageCount() const { return mappedPages; }
    std::uint64_t nodeCount() const { return nodes; }
    const std::string &name() const { return tableName; }

  private:
    static constexpr unsigned entriesPerNode = 512;
    static constexpr unsigned entryBytes = 8;

    struct Node;

    /**
     * Table slots are packed into one 64-bit word each, so the walk
     * descent touches a single 8-byte slot per level (the previous
     * {state, pfn, unique_ptr} layout spread a node over three cache
     * lines' worth of slots per line — packing keeps the hot upper
     * levels resident). Encoding:
     *  - 0: not present;
     *  - low tag bits == slotChildTag: upper bits hold the child
     *    Node pointer (8-byte aligned, so the tag bits are free);
     *  - low tag bits == slotLeafTag: upper bits hold pfn << 2.
     */
    static constexpr std::uint64_t slotTagMask = 3;
    static constexpr std::uint64_t slotChildTag = 1;
    static constexpr std::uint64_t slotLeafTag = 2;

    static bool
    isChild(std::uint64_t slot)
    {
        return (slot & slotTagMask) == slotChildTag;
    }
    static bool
    isLeaf(std::uint64_t slot)
    {
        return (slot & slotTagMask) == slotLeafTag;
    }
    static Node *
    childOf(std::uint64_t slot)
    {
        return reinterpret_cast<Node *>(slot & ~slotTagMask);
    }
    static PageNum
    pfnOf(std::uint64_t slot)
    {
        return slot >> 2;
    }

    struct Node
    {
        explicit Node(Addr frame_addr) : frame(frame_addr) {}
        ~Node();
        Node(const Node &) = delete;
        Node &operator=(const Node &) = delete;

        Addr frame;
        std::array<std::uint64_t, entriesPerNode> slots{};
    };

    /** Index into the node at @p level for virtual address bits. */
    static unsigned levelIndex(Addr vaddr, unsigned level);

    std::string tableName;
    FrameAllocator &frames;
    std::unique_ptr<Node> root;
    std::uint64_t mappedPages = 0;
    std::uint64_t nodes = 0;
};

} // namespace pomtlb

#endif // POMTLB_PAGETABLE_RADIX_TABLE_HH

#include "pagetable/radix_table.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pomtlb
{

FrameAllocator::FrameAllocator(Addr base, Addr limit_addr)
    : baseAddr(alignUp(base, smallPageBytes)),
      next(alignUp(base, smallPageBytes)),
      limit(limit_addr)
{
    simAssert(baseAddr < limit, "frame allocator region is empty");
}

Addr
FrameAllocator::allocate(PageSize size)
{
    const Addr bytes = pageBytes(size);
    const Addr frame = alignUp(next, bytes);
    if (frame + bytes > limit)
        fatal("frame allocator exhausted (base 0x", std::hex, baseAddr,
              ", limit 0x", limit, ")");
    next = frame + bytes;
    return frame;
}

Addr
FrameAllocator::allocateTableNode()
{
    return allocate(PageSize::Small4K);
}

RadixPageTable::RadixPageTable(std::string name,
                               FrameAllocator &allocator)
    : tableName(std::move(name)), frames(allocator)
{
    root = std::make_unique<Node>(frames.allocateTableNode());
    nodes = 1;
}

unsigned
RadixPageTable::levelIndex(Addr vaddr, unsigned level)
{
    // Level 4 indexes bits 47..39, level 1 indexes bits 20..12.
    const unsigned shift = smallPageShift + 9 * (level - 1);
    return static_cast<unsigned>(extractBits(vaddr, shift, 9));
}

void
RadixPageTable::map(PageNum vpn, PageSize size, PageNum pfn)
{
    const Addr vaddr = vpn << pageShift(size);
    const unsigned leaf_level = (size == PageSize::Small4K) ? 1 : 2;

    Node *node = root.get();
    for (unsigned level = 4; level > leaf_level; --level) {
        Entry &entry = node->slots[levelIndex(vaddr, level)];
        if (entry.state == Entry::State::Leaf) {
            panic("table '", tableName, "': page-size conflict at level ",
                  level, " mapping vaddr 0x", std::hex, vaddr);
        }
        if (entry.state == Entry::State::NotPresent) {
            entry.child =
                std::make_unique<Node>(frames.allocateTableNode());
            entry.state = Entry::State::Child;
            ++nodes;
        }
        node = entry.child.get();
    }

    Entry &leaf = node->slots[levelIndex(vaddr, leaf_level)];
    if (leaf.state == Entry::State::Child) {
        panic("table '", tableName, "': mapping a ", pageSizeName(size),
              " page over an existing subtree at vaddr 0x", std::hex,
              vaddr);
    }
    if (leaf.state == Entry::State::NotPresent)
        ++mappedPages;
    leaf.state = Entry::State::Leaf;
    leaf.pfn = pfn;
}

bool
RadixPageTable::isMapped(Addr vaddr) const
{
    const Node *node = root.get();
    for (unsigned level = 4; level >= 1; --level) {
        const Entry &entry = node->slots[levelIndex(vaddr, level)];
        if (entry.state == Entry::State::Leaf)
            return true;
        if (entry.state == Entry::State::NotPresent)
            return false;
        node = entry.child.get();
    }
    return false;
}

RadixWalkPath
RadixPageTable::walk(Addr vaddr, unsigned first_level) const
{
    simAssert(first_level >= 1 && first_level <= 4,
              "walk must start at level 1..4");
    RadixWalkPath path;

    // Descend silently (no recorded reads) to the starting level —
    // this models a PSC hit that already supplied the upper entries.
    const Node *node = root.get();
    for (unsigned level = 4; level > first_level; --level) {
        const Entry &entry = node->slots[levelIndex(vaddr, level)];
        if (entry.state == Entry::State::Leaf) {
            // The PSC claimed a deeper entry but the leaf is here
            // (can't happen with consistent PSC fills).
            panic("table '", tableName,
                  "': PSC skip descended past a leaf");
        }
        if (entry.state == Entry::State::NotPresent)
            return path; // not mapped
        node = entry.child.get();
    }

    for (unsigned level = first_level; level >= 1; --level) {
        const Entry &entry = node->slots[levelIndex(vaddr, level)];
        path.pteAddr[path.reads] =
            node->frame + levelIndex(vaddr, level) * entryBytes;
        path.pteLevel[path.reads] = level;
        ++path.reads;

        if (entry.state == Entry::State::NotPresent)
            return path; // reads up to the absent entry still happened

        if (entry.state == Entry::State::Leaf) {
            path.present = true;
            path.pfn = entry.pfn;
            path.size =
                (level == 1) ? PageSize::Small4K : PageSize::Large2M;
            return path;
        }
        node = entry.child.get();
    }
    return path;
}

bool
RadixPageTable::unmap(Addr vaddr)
{
    Node *node = root.get();
    for (unsigned level = 4; level >= 1; --level) {
        Entry &entry = node->slots[levelIndex(vaddr, level)];
        if (entry.state == Entry::State::Leaf) {
            entry.state = Entry::State::NotPresent;
            entry.pfn = 0;
            --mappedPages;
            return true;
        }
        if (entry.state == Entry::State::NotPresent)
            return false;
        node = entry.child.get();
    }
    return false;
}

} // namespace pomtlb

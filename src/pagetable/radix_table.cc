#include "pagetable/radix_table.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace pomtlb
{

FrameAllocator::FrameAllocator(Addr base, Addr limit_addr)
    : baseAddr(alignUp(base, smallPageBytes)),
      next(alignUp(base, smallPageBytes)),
      limit(limit_addr)
{
    simAssert(baseAddr < limit, "frame allocator region is empty");
}

Addr
FrameAllocator::allocate(PageSize size)
{
    const Addr bytes = pageBytes(size);
    const Addr frame = alignUp(next, bytes);
    if (frame + bytes > limit)
        fatal("frame allocator exhausted (base 0x", std::hex, baseAddr,
              ", limit 0x", limit, ")");
    next = frame + bytes;
    return frame;
}

Addr
FrameAllocator::allocateTableNode()
{
    return allocate(PageSize::Small4K);
}

RadixPageTable::Node::~Node()
{
    for (const std::uint64_t slot : slots) {
        if (isChild(slot))
            delete childOf(slot);
    }
}

RadixPageTable::RadixPageTable(std::string name,
                               FrameAllocator &allocator)
    : tableName(std::move(name)), frames(allocator)
{
    root = std::make_unique<Node>(frames.allocateTableNode());
    nodes = 1;
}

unsigned
RadixPageTable::levelIndex(Addr vaddr, unsigned level)
{
    // Level 4 indexes bits 47..39, level 1 indexes bits 20..12.
    const unsigned shift = smallPageShift + 9 * (level - 1);
    return static_cast<unsigned>(extractBits(vaddr, shift, 9));
}

void
RadixPageTable::map(PageNum vpn, PageSize size, PageNum pfn)
{
    const Addr vaddr = vpn << pageShift(size);
    const unsigned leaf_level = (size == PageSize::Small4K) ? 1 : 2;

    Node *node = root.get();
    for (unsigned level = 4; level > leaf_level; --level) {
        std::uint64_t &entry = node->slots[levelIndex(vaddr, level)];
        if (isLeaf(entry)) {
            panic("table '", tableName, "': page-size conflict at level ",
                  level, " mapping vaddr 0x", std::hex, vaddr);
        }
        if (entry == 0) {
            Node *child = new Node(frames.allocateTableNode());
            entry = reinterpret_cast<std::uint64_t>(child) |
                    slotChildTag;
            ++nodes;
        }
        node = childOf(entry);
    }

    std::uint64_t &leaf = node->slots[levelIndex(vaddr, leaf_level)];
    if (isChild(leaf)) {
        panic("table '", tableName, "': mapping a ", pageSizeName(size),
              " page over an existing subtree at vaddr 0x", std::hex,
              vaddr);
    }
    if (leaf == 0)
        ++mappedPages;
    leaf = (pfn << 2) | slotLeafTag;
}

bool
RadixPageTable::isMapped(Addr vaddr) const
{
    const Node *node = root.get();
    for (unsigned level = 4; level >= 1; --level) {
        const std::uint64_t entry = node->slots[levelIndex(vaddr, level)];
        if (isLeaf(entry))
            return true;
        if (entry == 0)
            return false;
        node = childOf(entry);
    }
    return false;
}

RadixWalkPath
RadixPageTable::walk(Addr vaddr, unsigned first_level) const
{
    simAssert(first_level >= 1 && first_level <= 4,
              "walk must start at level 1..4");
    RadixWalkPath path;

    // Descend silently (no recorded reads) to the starting level —
    // this models a PSC hit that already supplied the upper entries.
    const Node *node = root.get();
    for (unsigned level = 4; level > first_level; --level) {
        const std::uint64_t entry =
            node->slots[levelIndex(vaddr, level)];
        if (isLeaf(entry)) {
            // The PSC claimed a deeper entry but the leaf is here
            // (can't happen with consistent PSC fills).
            panic("table '", tableName,
                  "': PSC skip descended past a leaf");
        }
        if (entry == 0)
            return path; // not mapped
        node = childOf(entry);
    }

    for (unsigned level = first_level; level >= 1; --level) {
        const unsigned slot = levelIndex(vaddr, level);
        const std::uint64_t entry = node->slots[slot];
        path.pteAddr[path.reads] = node->frame + slot * entryBytes;
        path.pteLevel[path.reads] = level;
        ++path.reads;

        if (entry == 0)
            return path; // reads up to the absent entry still happened

        if (isLeaf(entry)) {
            path.present = true;
            path.pfn = pfnOf(entry);
            path.size =
                (level == 1) ? PageSize::Small4K : PageSize::Large2M;
            return path;
        }
        node = childOf(entry);
    }
    return path;
}

bool
RadixPageTable::unmap(Addr vaddr)
{
    Node *node = root.get();
    for (unsigned level = 4; level >= 1; --level) {
        std::uint64_t &entry = node->slots[levelIndex(vaddr, level)];
        if (isLeaf(entry)) {
            entry = 0;
            --mappedPages;
            return true;
        }
        if (entry == 0)
            return false;
        node = childOf(entry);
    }
    return false;
}

} // namespace pomtlb

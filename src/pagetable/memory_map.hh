/**
 * @file
 * The OS/hypervisor substrate: address-space bookkeeping for every VM
 * and guest process.
 *
 * In virtualized mode each VM owns a guest-physical space served by
 * its own allocator; guest page tables (one per process) map gVA->gPA
 * and the VM's host (EPT) table maps gPA->hPA. In native mode there is
 * a single dimension: per-process tables map VA directly to host
 * frames and host translation is the identity.
 *
 * Mapping is demand-driven and costless (a page-fault-free idealised
 * OS): all schemes see identical mappings, so the simplification
 * cancels out of every comparison, as the paper's additive model
 * assumes.
 */

#ifndef POMTLB_PAGETABLE_MEMORY_MAP_HH
#define POMTLB_PAGETABLE_MEMORY_MAP_HH

#include <cstdint>
#include <map>
#include <memory>

#include "common/types.hh"
#include "pagetable/radix_table.hh"

namespace pomtlb
{

/** Sizing knobs for the simulated address spaces. */
struct MemoryMapConfig
{
    ExecMode mode = ExecMode::Virtualized;
    /** Host-physical bytes available to VMs (and native processes). */
    Addr hostPhysBytes = Addr{256} << 30;
    /** Guest-physical bytes per VM. */
    Addr guestPhysBytes = Addr{64} << 30;
};

/** A resolved translation with both intermediate addresses. */
struct TranslationInfo
{
    GuestPhysAddr gpa = 0;
    HostPhysAddr hpa = 0;
    PageSize size = PageSize::Small4K;
};

/** Owns all page tables and frame allocators of the machine. */
class MemoryMap
{
  public:
    explicit MemoryMap(const MemoryMapConfig &config);

    /**
     * Ensure vaddr's page is mapped for (vm, pid) at @p size — in the
     * guest table and, in virtualized mode, backed in the VM's host
     * table. Idempotent; returns the final translation.
     */
    TranslationInfo ensureMapped(VmId vm, ProcessId pid, Addr vaddr,
                                 PageSize size);

    /**
     * Host-translate @p gpa for @p vm without timing. Lazily backs
     * unmapped guest-physical frames (page-table node frames) with
     * 4 KB host pages. Identity in native mode.
     */
    HostPhysAddr hostTranslate(VmId vm, GuestPhysAddr gpa);

    /** The guest (or native) page table of (vm, pid). */
    RadixPageTable &guestTable(VmId vm, ProcessId pid);

    /** The VM's host (EPT) table. Fatal in native mode. */
    RadixPageTable &hostTable(VmId vm);

    /** Drop one page's mapping (shootdown experiments). */
    bool unmapPage(VmId vm, ProcessId pid, Addr vaddr, PageSize size);

    ExecMode mode() const { return mapConfig.mode; }
    std::uint64_t vmCount() const { return vms.size(); }

    /** Total host-physical bytes handed out so far. */
    Addr hostBytesAllocated() const
    {
        return hostFrames->bytesAllocated();
    }

  private:
    struct VmState
    {
        std::unique_ptr<FrameAllocator> guestFrames;
        std::unique_ptr<RadixPageTable> hostTable;
        std::map<ProcessId, std::unique_ptr<RadixPageTable>> guestTables;
    };

    VmState &vmState(VmId vm);

    MemoryMapConfig mapConfig;
    std::unique_ptr<FrameAllocator> hostFrames;
    std::map<VmId, VmState> vms;
};

} // namespace pomtlb

#endif // POMTLB_PAGETABLE_MEMORY_MAP_HH

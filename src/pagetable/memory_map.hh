/**
 * @file
 * The OS/hypervisor substrate: address-space bookkeeping for every VM
 * and guest process.
 *
 * In virtualized mode each VM owns a guest-physical space served by
 * its own allocator; guest page tables (one per process) map gVA->gPA
 * and the VM's host (EPT) table maps gPA->hPA. In native mode there is
 * a single dimension: per-process tables map VA directly to host
 * frames and host translation is the identity.
 *
 * Mapping is demand-driven and costless (a page-fault-free idealised
 * OS): all schemes see identical mappings, so the simplification
 * cancels out of every comparison, as the paper's additive model
 * assumes.
 */

#ifndef POMTLB_PAGETABLE_MEMORY_MAP_HH
#define POMTLB_PAGETABLE_MEMORY_MAP_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/bitutil.hh"
#include "common/hash_set.hh"
#include "common/types.hh"
#include "pagetable/radix_table.hh"

namespace pomtlb
{

/** Sizing knobs for the simulated address spaces. */
struct MemoryMapConfig
{
    ExecMode mode = ExecMode::Virtualized;
    /** Host-physical bytes available to VMs (and native processes). */
    Addr hostPhysBytes = Addr{256} << 30;
    /** Guest-physical bytes per VM. */
    Addr guestPhysBytes = Addr{64} << 30;
};

/** A resolved translation with both intermediate addresses. */
struct TranslationInfo
{
    GuestPhysAddr gpa = 0;
    HostPhysAddr hpa = 0;
    PageSize size = PageSize::Small4K;
};

/** Owns all page tables and frame allocators of the machine. */
class MemoryMap
{
  public:
    explicit MemoryMap(const MemoryMapConfig &config);

    /**
     * Ensure vaddr's page is mapped for (vm, pid) at @p size — in the
     * guest table and, in virtualized mode, backed in the VM's host
     * table. Idempotent; returns the final translation.
     */
    TranslationInfo ensureMapped(VmId vm, ProcessId pid, Addr vaddr,
                                 PageSize size);

    /**
     * Host-translate @p gpa for @p vm without timing. Lazily backs
     * unmapped guest-physical frames (page-table node frames) with
     * 4 KB host pages. Identity in native mode.
     */
    HostPhysAddr hostTranslate(VmId vm, GuestPhysAddr gpa);

    /**
     * Ensure @p gpa has a host backing without producing the
     * translation. Equivalent to discarding hostTranslate()'s result,
     * but memoised per guest-physical 4 KB page so the per-walk
     * hot-path call is a single hash probe once the page is backed
     * (EPT mappings are never torn down, so the memo never goes
     * stale).
     */
    void
    ensureHostBacked(VmId vm, GuestPhysAddr gpa)
    {
        if (mapConfig.mode == ExecMode::Native)
            return;
        if (hostBacked.insert(hostBackedKey(vm, gpa)))
            hostTranslate(vm, gpa);
    }

    /** The guest (or native) page table of (vm, pid). */
    RadixPageTable &guestTable(VmId vm, ProcessId pid);

    /** The VM's host (EPT) table. Fatal in native mode. */
    RadixPageTable &hostTable(VmId vm);

    /** Drop one page's mapping (shootdown experiments). */
    bool unmapPage(VmId vm, ProcessId pid, Addr vaddr, PageSize size);

    ExecMode mode() const { return mapConfig.mode; }
    std::uint64_t vmCount() const { return vms.size(); }

    /** Total host-physical bytes handed out so far. */
    Addr hostBytesAllocated() const
    {
        return hostFrames->bytesAllocated();
    }

  private:
    struct VmState
    {
        std::unique_ptr<FrameAllocator> guestFrames;
        std::unique_ptr<RadixPageTable> hostTable;
        std::map<ProcessId, std::unique_ptr<RadixPageTable>> guestTables;
    };

    /**
     * Open-addressing memo of per-page translations. The 24-byte
     * slots keep the key and both page bases together, so a probe of
     * this (often LLC-exceeding) table costs one memory touch rather
     * than a key probe plus a payload indirection.
     */
    class PageMemoMap
    {
      public:
        struct Slot
        {
            std::uint64_t key = 0;
            GuestPhysAddr gpaPage = 0;
            HostPhysAddr hpaPage = 0;
        };

        explicit PageMemoMap(std::size_t expected = 4096)
        {
            std::size_t cap = 16;
            while (cap < expected * 2)
                cap <<= 1;
            slots.assign(cap, Slot{});
            mask = cap - 1;
        }

        /** Look up a pre-mixed key; nullptr when absent. */
        const Slot *
        find(std::uint64_t key) const
        {
            if (key == 0)
                return zeroPresent ? &zeroSlot : nullptr;
            std::size_t i = static_cast<std::size_t>(key) & mask;
            for (;;) {
                const Slot &slot = slots[i];
                if (slot.key == key)
                    return &slot;
                if (slot.key == 0)
                    return nullptr;
                i = (i + 1) & mask;
            }
        }

        /** Insert a fresh key (must not be present). */
        void
        insert(std::uint64_t key, GuestPhysAddr gpa_page,
               HostPhysAddr hpa_page)
        {
            if (key == 0) {
                zeroPresent = true;
                zeroSlot = {0, gpa_page, hpa_page};
                return;
            }
            if ((used + 1) * 3 >= slots.size() * 2)
                grow();
            std::size_t i = static_cast<std::size_t>(key) & mask;
            while (slots[i].key != 0)
                i = (i + 1) & mask;
            slots[i] = {key, gpa_page, hpa_page};
            ++used;
        }

        /** Drop every entry, keeping the current capacity. */
        void
        clear()
        {
            std::fill(slots.begin(), slots.end(), Slot{});
            used = 0;
            zeroPresent = false;
        }

      private:
        void
        grow()
        {
            std::vector<Slot> old = std::move(slots);
            slots.assign(old.size() * 2, Slot{});
            mask = slots.size() - 1;
            for (const Slot &slot : old) {
                if (slot.key == 0)
                    continue;
                std::size_t i =
                    static_cast<std::size_t>(slot.key) & mask;
                while (slots[i].key != 0)
                    i = (i + 1) & mask;
                slots[i] = slot;
            }
        }

        std::vector<Slot> slots;
        std::size_t mask = 0;
        std::size_t used = 0;
        bool zeroPresent = false;
        Slot zeroSlot;
    };

    /**
     * Hot-path state for one (vm, pid) address space: the guest
     * table plus the space's translation memo. The memo caches the
     * page-granular result of ensureMapped() so repeat calls (one per
     * page walk) cost a hash probe instead of two functional radix
     * walks; it is flushed on unmapPage().
     */
    struct SpaceEntry
    {
        RadixPageTable *table = nullptr;
        VmState *vm = nullptr;
        /** mix64(vpn << 1 | large?) -> page bases. */
        PageMemoMap memo;
    };

    VmState &vmState(VmId vm);
    /** Fast (vm, pid) -> SpaceEntry lookup (MRU + flat hash map). */
    SpaceEntry &spaceEntry(VmId vm, ProcessId pid);
    /** Create-or-find the guest table in the owning std::map. */
    RadixPageTable &guestTableSlow(VmId vm, ProcessId pid);

    static std::uint64_t
    hostBackedKey(VmId vm, GuestPhysAddr gpa)
    {
        return mix64((gpa >> smallPageShift) ^
                     (static_cast<std::uint64_t>(vm) << 48));
    }

    MemoryMapConfig mapConfig;
    std::unique_ptr<FrameAllocator> hostFrames;
    std::map<VmId, VmState> vms;

    /** vm id -> VmState, grown on demand (VmId is 16-bit). */
    std::vector<VmState *> vmCache;
    /** mix64((vm << 16) | pid) -> index into spaces. */
    U64Map spaceMap;
    /** Stable-index storage for the per-space hot-path state. */
    std::vector<std::unique_ptr<SpaceEntry>> spaces;
    /** One-entry MRU for spaceEntry() (block execution runs the same
     *  core — hence the same space — for many consecutive refs). */
    std::uint64_t lastSpaceKey = ~std::uint64_t{0};
    SpaceEntry *lastSpace = nullptr;
    /** Guest-physical 4 KB pages already given a host backing. */
    U64Set hostBacked;
};

} // namespace pomtlb

#endif // POMTLB_PAGETABLE_MEMORY_MAP_HH

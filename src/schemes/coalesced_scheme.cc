#include "schemes/coalesced_scheme.hh"

#include <bit>

#include "common/bitutil.hh"
#include "common/log.hh"
#include "sim/machine.hh"
#include "sim/scheme_registry.hh"

namespace pomtlb
{

CoalescedTlbScheme::CoalescedTlbScheme(
    const CoalescedTlbConfig &config, unsigned total_entries,
    std::vector<std::unique_ptr<PageWalker>> &walkers)
    : tlbConfig(config), pageWalkers(walkers), statGroup("scheme")
{
    tlbConfig.validate();
    simAssert(total_entries >= tlbConfig.associativity,
              "coalesced: fewer entries than ways");
    sets = std::bit_floor<std::size_t>(total_entries /
                                       tlbConfig.associativity);
    entries.resize(sets * tlbConfig.associativity);

    statGroup.addCounter("hits", hits);
    statGroup.addCounter("walks", walks);
    statGroup.addCounter("merges", merges);
    statGroup.addCounter("splits", splits);
    statGroup.addCounter("coalesced_hit_cycles", coalescedHitCycles);
    statGroup.addCounter("walk_path_cycles", walkPathCycles);
    statGroup.addAverage("avg_miss_cycles", missCycles);
    statGroup.addDerived("coalesced_hit_rate",
                         [this] { return hitRate(); });
    statGroup.addDerived("avg_pages_per_entry",
                         [this] { return avgPagesPerEntry(); });
    statGroup.addHistogram("miss_cycle_hist", missCycleHist);
}

std::size_t
CoalescedTlbScheme::setIndex(PageNum base_vpn, PageSize size, VmId vm,
                             ProcessId pid) const
{
    const std::uint64_t key =
        (base_vpn << 3) ^ (static_cast<std::uint64_t>(vm) << 48) ^
        (static_cast<std::uint64_t>(pid) << 32) ^
        static_cast<std::uint64_t>(size);
    return mix64(key) & (sets - 1);
}

CoalescedTlbScheme::Entry *
CoalescedTlbScheme::findEntry(PageNum base_vpn, PageSize size,
                              VmId vm, ProcessId pid)
{
    const std::size_t set = setIndex(base_vpn, size, vm, pid);
    Entry *base = &entries[set * tlbConfig.associativity];
    for (unsigned way = 0; way < tlbConfig.associativity; ++way) {
        Entry &entry = base[way];
        if (entry.valid && entry.baseVpn == base_vpn &&
            entry.size == size && entry.vm == vm &&
            entry.pid == pid) {
            return &entry;
        }
    }
    return nullptr;
}

void
CoalescedTlbScheme::install(PageNum base_vpn, unsigned offset,
                            PageNum pfn, PageSize size, VmId vm,
                            ProcessId pid)
{
    const std::uint64_t bit = std::uint64_t{1} << offset;
    if (Entry *entry = findEntry(base_vpn, size, vm, pid)) {
        entry->stamp = ++tick;
        if (entry->basePfn + offset == pfn) {
            // The observed frame extends the run's contiguity.
            if (!(entry->present & bit)) {
                entry->present |= bit;
                ++merges;
            }
        } else {
            // Contiguity broke: re-anchor the run on the new frame
            // and drop everything merged under the old base.
            entry->basePfn = pfn - offset;
            entry->present = bit;
            ++splits;
        }
        return;
    }

    const std::size_t set = setIndex(base_vpn, size, vm, pid);
    Entry *base = &entries[set * tlbConfig.associativity];
    Entry *victim = base;
    for (unsigned way = 0; way < tlbConfig.associativity; ++way) {
        Entry &entry = base[way];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (entry.stamp < victim->stamp)
            victim = &entry;
    }
    victim->valid = true;
    victim->vm = vm;
    victim->pid = pid;
    victim->size = size;
    victim->baseVpn = base_vpn;
    victim->basePfn = pfn - offset;
    victim->present = bit;
    victim->stamp = ++tick;
}

SchemeResult
CoalescedTlbScheme::translateMiss(CoreId core, Addr vaddr,
                                  PageSize size, VmId vm,
                                  ProcessId pid, Cycles now)
{
    simAssert(core < pageWalkers.size(), "core id out of range");
    SchemeResult result;

    const PageNum vpn = pageNumber(vaddr, size);
    const PageNum base_vpn = vpn & ~PageNum{tlbConfig.rangePages - 1};
    const unsigned offset = static_cast<unsigned>(vpn - base_vpn);

    result.cycles += tlbConfig.accessLatency;
    Entry *entry = findEntry(base_vpn, size, vm, pid);
    if (entry && (entry->present & (std::uint64_t{1} << offset))) {
        entry->stamp = ++tick;
        result.pfn = entry->basePfn + offset;
        result.servedBy = ServicePoint::CoalescedTlb;
        result.probes = 1;
        ++hits;
        coalescedHitCycles += result.cycles;
        missCycles.sample(static_cast<double>(result.cycles));
        if (StatsRegistry::detail())
            missCycleHist.sample(result.cycles);
        return result;
    }

    const WalkResult walk = pageWalkers[core]->walk(
        vaddr, vm, pid, size, now + result.cycles);
    result.cycles += walk.cycles;
    result.pfn = walk.hostPfn;
    result.walked = true;
    result.servedBy = ServicePoint::PageWalk;
    result.probes = 2;
    result.firstTryServed = false;
    ++walks;
    walkPathCycles += result.cycles;

    install(base_vpn, offset, walk.hostPfn, size, vm, pid);
    missCycles.sample(static_cast<double>(result.cycles));
    if (StatsRegistry::detail())
        missCycleHist.sample(result.cycles);
    return result;
}

std::vector<std::pair<ServicePoint, std::uint64_t>>
CoalescedTlbScheme::cycleBreakdown() const
{
    return {{ServicePoint::CoalescedTlb, coalescedHitCycles.value()},
            {ServicePoint::PageWalk, walkPathCycles.value()}};
}

void
CoalescedTlbScheme::invalidatePage(Addr vaddr, PageSize size, VmId vm,
                                   ProcessId pid)
{
    const PageNum vpn = pageNumber(vaddr, size);
    const PageNum base_vpn = vpn & ~PageNum{tlbConfig.rangePages - 1};
    const unsigned offset = static_cast<unsigned>(vpn - base_vpn);
    if (Entry *entry = findEntry(base_vpn, size, vm, pid)) {
        entry->present &= ~(std::uint64_t{1} << offset);
        if (entry->present == 0)
            entry->valid = false;
    }
}

void
CoalescedTlbScheme::invalidateVm(VmId vm)
{
    for (Entry &entry : entries) {
        if (entry.valid && entry.vm == vm) {
            entry.valid = false;
            entry.present = 0;
        }
    }
    for (auto &walker : pageWalkers)
        walker->invalidateVm(vm);
}

double
CoalescedTlbScheme::hitRate() const
{
    const std::uint64_t total = hits.value() + walks.value();
    return total ? static_cast<double>(hits.value()) / total : 0.0;
}

double
CoalescedTlbScheme::avgPagesPerEntry() const
{
    std::uint64_t live = 0;
    std::uint64_t pages = 0;
    for (const Entry &entry : entries) {
        if (!entry.valid)
            continue;
        ++live;
        pages += static_cast<std::uint64_t>(
            std::popcount(entry.present));
    }
    return live ? static_cast<double>(pages) /
                      static_cast<double>(live)
                : 0.0;
}

void
CoalescedTlbScheme::resetStats()
{
    hits.reset();
    walks.reset();
    merges.reset();
    splits.reset();
    coalescedHitCycles.reset();
    walkPathCycles.reset();
    missCycles.reset();
    missCycleHist.reset();
}

POMTLB_REGISTER_SCHEME(registerCoalesced, {
    .name = "Coalesced",
    .description = "pooled second-level SRAM TLB with SVNAPOT/CoLT-"
                   "style coalesced entries covering contiguous runs",
    .aliases = {"coalesced", "coalesced-tlb"},
    .rank = 4,
    .factory = [](const SystemConfig &config, Machine &machine)
        -> std::unique_ptr<TranslationScheme> {
        // Pool the private L2 TLB entry budget, like Shared_L2; each
        // coalesced entry then stretches that budget over a run.
        const unsigned total = config.l2Tlb.entries * config.numCores;
        return std::make_unique<CoalescedTlbScheme>(
            config.coalesced, total, machine.walkerPool());
    },
});

} // namespace pomtlb

#include "schemes/victima_scheme.hh"

#include "common/bitutil.hh"
#include "common/log.hh"
#include "sim/machine.hh"
#include "sim/scheme_registry.hh"

namespace pomtlb
{

namespace
{
constexpr std::uint64_t kBlockBytes = 64;
} // namespace

VictimaScheme::VictimaScheme(
    const VictimaConfig &config, DataHierarchy &hierarchy,
    std::vector<std::unique_ptr<PageWalker>> &walkers)
    : victimaConfig(config),
      dataHierarchy(hierarchy),
      pageWalkers(walkers),
      numBlocks(config.regionBytes / kBlockBytes),
      statGroup("scheme")
{
    victimaConfig.validate();
    statGroup.addCounter("requests", requests);
    statGroup.addCounter("served_l2d_cache", servedL2d);
    statGroup.addCounter("served_l3d_cache", servedL3d);
    statGroup.addCounter("served_page_walk", servedWalks);
    statGroup.addCounter("l2d_cache_cycles", l2dCycles);
    statGroup.addCounter("l3d_cache_cycles", l3dCycles);
    statGroup.addCounter("walk_path_cycles", walkPathCycles);
    statGroup.addAverage("avg_miss_cycles", missCycles);
    statGroup.addDerived("cached_line_hit_rate",
                         [this] { return cachedLineHitRate(); });
    statGroup.addHistogram("miss_cycle_hist", missCycleHist);
}

Addr
VictimaScheme::blockAddress(PageNum vpn, PageSize size, VmId vm,
                            ProcessId pid) const
{
    const std::uint64_t key =
        (vpn << 3) ^ (static_cast<std::uint64_t>(vm) << 48) ^
        (static_cast<std::uint64_t>(pid) << 32) ^
        static_cast<std::uint64_t>(size);
    const std::uint64_t index = mix64(key) & (numBlocks - 1);
    return victimaConfig.baseAddress + index * kBlockBytes;
}

VictimaScheme::Slot *
VictimaScheme::findSlot(Block &block, PageNum vpn, PageSize size,
                        VmId vm, ProcessId pid)
{
    for (Slot &slot : block.slots) {
        if (slot.valid && slot.vpn == vpn && slot.size == size &&
            slot.vm == vm && slot.pid == pid) {
            return &slot;
        }
    }
    return nullptr;
}

void
VictimaScheme::installSlot(Addr block_addr, PageNum vpn,
                           PageSize size, VmId vm, ProcessId pid,
                           PageNum pfn)
{
    Block &block = shadow[block_addr];
    if (block.slots.empty())
        block.slots.resize(victimaConfig.entriesPerBlock);
    if (Slot *slot = findSlot(block, vpn, size, vm, pid)) {
        slot->pfn = pfn;
        slot->stamp = ++tick;
        return;
    }
    Slot *victim = &block.slots.front();
    for (Slot &slot : block.slots) {
        if (!slot.valid) {
            victim = &slot;
            break;
        }
        if (slot.stamp < victim->stamp)
            victim = &slot;
    }
    victim->valid = true;
    victim->vm = vm;
    victim->pid = pid;
    victim->size = size;
    victim->vpn = vpn;
    victim->pfn = pfn;
    victim->stamp = ++tick;
}

SchemeResult
VictimaScheme::translateMiss(CoreId core, Addr vaddr, PageSize size,
                             VmId vm, ProcessId pid, Cycles now)
{
    simAssert(core < pageWalkers.size(), "core id out of range");
    SchemeResult result;
    ++requests;

    const PageNum vpn = pageNumber(vaddr, size);
    const Addr block_addr = blockAddress(vpn, size, vm, pid);
    const CacheProbeResult probe =
        dataHierarchy.probeTlbLine(core, block_addr, now);
    result.cycles += probe.latency;
    if (probe.hit) {
        auto it = shadow.find(block_addr);
        Slot *slot = it == shadow.end()
                         ? nullptr
                         : findSlot(it->second, vpn, size, vm, pid);
        if (slot != nullptr) {
            slot->stamp = ++tick;
            result.pfn = slot->pfn;
            result.probes = 1;
            if (probe.level == MemLevel::L2D) {
                result.servedBy = ServicePoint::VictimaL2D;
                ++servedL2d;
                l2dCycles += result.cycles;
            } else {
                result.servedBy = ServicePoint::VictimaL3D;
                ++servedL3d;
                l3dCycles += result.cycles;
            }
            missCycles.sample(static_cast<double>(result.cycles));
            if (StatsRegistry::detail())
                missCycleHist.sample(result.cycles);
            return result;
        }
    }

    const WalkResult walk = pageWalkers[core]->walk(
        vaddr, vm, pid, size, now + result.cycles);
    result.cycles += walk.cycles;
    result.pfn = walk.hostPfn;
    result.walked = true;
    result.servedBy = ServicePoint::PageWalk;
    result.probes = 2;
    result.firstTryServed = false;
    ++servedWalks;
    walkPathCycles += result.cycles;

    installSlot(block_addr, vpn, size, vm, pid, walk.hostPfn);
    dataHierarchy.fillTlbLine(core, block_addr);
    missCycles.sample(static_cast<double>(result.cycles));
    if (StatsRegistry::detail())
        missCycleHist.sample(result.cycles);
    return result;
}

void
VictimaScheme::prewarm(CoreId core, Addr vaddr, PageSize size,
                       VmId vm, ProcessId pid, PageNum pfn)
{
    const PageNum vpn = pageNumber(vaddr, size);
    const Addr block_addr = blockAddress(vpn, size, vm, pid);
    installSlot(block_addr, vpn, size, vm, pid, pfn);
    dataHierarchy.fillTlbLine(core, block_addr);
}

std::vector<std::pair<ServicePoint, std::uint64_t>>
VictimaScheme::cycleBreakdown() const
{
    return {{ServicePoint::VictimaL2D, l2dCycles.value()},
            {ServicePoint::VictimaL3D, l3dCycles.value()},
            {ServicePoint::PageWalk, walkPathCycles.value()}};
}

void
VictimaScheme::invalidatePage(Addr vaddr, PageSize size, VmId vm,
                              ProcessId pid)
{
    const PageNum vpn = pageNumber(vaddr, size);
    const Addr block_addr = blockAddress(vpn, size, vm, pid);
    auto it = shadow.find(block_addr);
    if (it == shadow.end())
        return;
    if (Slot *slot = findSlot(it->second, vpn, size, vm, pid))
        slot->valid = false;
    // Drop the cached copy too: the block's payload changed.
    dataHierarchy.invalidateTlbLine(block_addr);
}

void
VictimaScheme::invalidateVm(VmId vm)
{
    for (auto &[block_addr, block] : shadow) {
        bool touched = false;
        for (Slot &slot : block.slots) {
            if (slot.valid && slot.vm == vm) {
                slot.valid = false;
                touched = true;
            }
        }
        if (touched)
            dataHierarchy.invalidateTlbLine(block_addr);
    }
    for (auto &walker : pageWalkers)
        walker->invalidateVm(vm);
}

double
VictimaScheme::cachedLineHitRate() const
{
    const std::uint64_t served =
        servedL2d.value() + servedL3d.value();
    const std::uint64_t total = served + servedWalks.value();
    return total ? static_cast<double>(served) / total : 0.0;
}

void
VictimaScheme::resetStats()
{
    requests.reset();
    servedL2d.reset();
    servedL3d.reset();
    servedWalks.reset();
    l2dCycles.reset();
    l3dCycles.reset();
    walkPathCycles.reset();
    missCycles.reset();
    missCycleHist.reset();
}

POMTLB_REGISTER_SCHEME(registerVictima, {
    .name = "Victima",
    .description = "translations stashed in underutilized L2/L3 "
                   "data-cache blocks (Kanellopoulos et al.)",
    .aliases = {"victima"},
    .rank = 5,
    .factory = [](const SystemConfig &config, Machine &machine)
        -> std::unique_ptr<TranslationScheme> {
        return std::make_unique<VictimaScheme>(config.victima,
                                               machine.hierarchy(),
                                               machine.walkerPool());
    },
});

} // namespace pomtlb

/**
 * @file
 * The "Victima" contender (after Kanellopoulos et al., MICRO'23):
 * translations are stashed in ordinary L2/L3 *data-cache* blocks
 * instead of a dedicated structure, so TLB reach scales with the
 * cache hierarchy's capacity — an alternative to the paper's answer
 * of putting the capacity in die-stacked DRAM.
 *
 * The model reuses the hierarchy's POM-TLB line plumbing
 * (DataHierarchy::probeTlbLine / fillTlbLine / invalidateTlbLine):
 * each translation hashes to one 64-byte "translation block" address;
 * a block cached in the L2D/L3D serves at that cache's latency, and
 * a block absent from the hierarchy falls through to a page walk,
 * after which the block is (re)filled. Entry payloads live in a
 * shadow table keyed by block address — the caches model *where* the
 * block is, the shadow models *what* is in it.
 *
 * Registered with the scheme registry as "Victima"; constructed only
 * through SchemeRegistry (sim/scheme_registry.hh).
 */

#ifndef POMTLB_SCHEMES_VICTIMA_SCHEME_HH
#define POMTLB_SCHEMES_VICTIMA_SCHEME_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "pagetable/walker.hh"
#include "sim/scheme.hh"

namespace pomtlb
{

/** Translations installed into underutilized data-cache blocks. */
class VictimaScheme : public TranslationScheme
{
  public:
    /**
     * @param config    Victima geometry (block region + packing).
     * @param hierarchy The data-cache hierarchy translation blocks
     *                  live in.
     * @param walkers   Per-core walkers for block misses.
     */
    VictimaScheme(const VictimaConfig &config,
                  DataHierarchy &hierarchy,
                  std::vector<std::unique_ptr<PageWalker>> &walkers);

    std::string name() const override { return "Victima"; }

    SchemeResult translateMiss(CoreId core, Addr vaddr, PageSize size,
                               VmId vm, ProcessId pid,
                               Cycles now) override;

    /**
     * Victima's translation store (the data caches) persists across
     * the warmup boundary, so prewarm installs the entry untimed.
     */
    void prewarm(CoreId core, Addr vaddr, PageSize size, VmId vm,
                 ProcessId pid, PageNum pfn) override;

    void invalidatePage(Addr vaddr, PageSize size, VmId vm,
                        ProcessId pid) override;
    void invalidateVm(VmId vm) override;
    void resetStats() override;

    const StatGroup *statistics() const override
    {
        return &statGroup;
    }
    std::vector<std::pair<ServicePoint, std::uint64_t>>
    cycleBreakdown() const override;

    /** Fraction of requests served from a cached block. */
    double cachedLineHitRate() const;

  private:
    /** One packed translation entry inside a block. */
    struct Slot
    {
        bool valid = false;
        VmId vm = 0;
        ProcessId pid = 0;
        PageSize size = PageSize::Small4K;
        PageNum vpn = 0;
        PageNum pfn = 0;
        std::uint64_t stamp = 0; /**< LRU stamp within the block. */
    };

    /** The payload of one 64-byte translation block. */
    struct Block
    {
        std::vector<Slot> slots;
    };

    Addr blockAddress(PageNum vpn, PageSize size, VmId vm,
                      ProcessId pid) const;
    Slot *findSlot(Block &block, PageNum vpn, PageSize size, VmId vm,
                   ProcessId pid);
    void installSlot(Addr block_addr, PageNum vpn, PageSize size,
                     VmId vm, ProcessId pid, PageNum pfn);

    VictimaConfig victimaConfig;
    DataHierarchy &dataHierarchy;
    std::vector<std::unique_ptr<PageWalker>> &pageWalkers;
    std::uint64_t numBlocks;
    std::unordered_map<Addr, Block> shadow;
    std::uint64_t tick = 0;

    Counter requests;
    Counter servedL2d;
    Counter servedL3d;
    Counter servedWalks;
    Counter l2dCycles;
    Counter l3dCycles;
    Counter walkPathCycles;
    Average missCycles;
    Log2Histogram missCycleHist;
    StatGroup statGroup;
};

} // namespace pomtlb

#endif // POMTLB_SCHEMES_VICTIMA_SCHEME_HH

/**
 * @file
 * The "Coalesced" contender: a pooled second-level SRAM TLB with
 * coalesced entries, in the spirit of CoLT (Pham et al., MICRO'12)
 * and RISC-V SVNAPOT. Each entry covers an aligned run of
 * `rangePages` virtually-contiguous small pages and remembers one
 * base frame plus a presence bitmap; when the OS allocated the run
 * physically contiguously (which the simulator's frame allocator
 * often does), one entry stands in for up to `rangePages` classic
 * TLB entries, multiplying reach at SRAM latency.
 *
 * Coalescing is purely passive: the scheme only merges frames it has
 * actually observed from completed page walks, and never probes the
 * page tables for speculative neighbours — so it is translation-
 * for-translation identical to every other scheme (the
 * tests/test_scheme_consistency.cc invariant).
 *
 * Registered with the scheme registry as "Coalesced"; constructed
 * only through SchemeRegistry (sim/scheme_registry.hh).
 */

#ifndef POMTLB_SCHEMES_COALESCED_SCHEME_HH
#define POMTLB_SCHEMES_COALESCED_SCHEME_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "pagetable/walker.hh"
#include "sim/scheme.hh"

namespace pomtlb
{

/** Coalesced-entry shared second-level TLB. */
class CoalescedTlbScheme : public TranslationScheme
{
  public:
    /**
     * @param config        Coalescing geometry and latency.
     * @param total_entries Coalesced entries in the pooled array
     *                      (rounded down to a power-of-two set
     *                      count).
     * @param walkers       Per-core walkers for misses.
     */
    CoalescedTlbScheme(
        const CoalescedTlbConfig &config, unsigned total_entries,
        std::vector<std::unique_ptr<PageWalker>> &walkers);

    std::string name() const override { return "Coalesced"; }

    /** Like Shared_L2, this pooled array replaces the private L2s. */
    bool providesSecondLevel() const override { return true; }

    SchemeResult translateMiss(CoreId core, Addr vaddr, PageSize size,
                               VmId vm, ProcessId pid,
                               Cycles now) override;

    void invalidatePage(Addr vaddr, PageSize size, VmId vm,
                        ProcessId pid) override;
    void invalidateVm(VmId vm) override;
    void resetStats() override;

    const StatGroup *statistics() const override
    {
        return &statGroup;
    }
    std::vector<std::pair<ServicePoint, std::uint64_t>>
    cycleBreakdown() const override;

    /** Fraction of requests the coalesced array served. */
    double hitRate() const;
    /** Mean pages covered per live coalesced entry, right now. */
    double avgPagesPerEntry() const;

  private:
    /** One coalesced entry: an aligned run of rangePages pages. */
    struct Entry
    {
        bool valid = false;
        VmId vm = 0;
        ProcessId pid = 0;
        PageSize size = PageSize::Small4K;
        /** First VPN of the aligned run. */
        PageNum baseVpn = 0;
        /**
         * Frame of the run's first page — page i of the run is only
         * representable while it maps to basePfn + i (modular
         * arithmetic, so basePfn may wrap when page 0 was never
         * observed).
         */
        PageNum basePfn = 0;
        /** Which pages of the run this entry currently covers. */
        std::uint64_t present = 0;
        /** LRU stamp. */
        std::uint64_t stamp = 0;
    };

    std::size_t setIndex(PageNum base_vpn, PageSize size, VmId vm,
                         ProcessId pid) const;
    Entry *findEntry(PageNum base_vpn, PageSize size, VmId vm,
                     ProcessId pid);
    void install(PageNum base_vpn, unsigned offset, PageNum pfn,
                 PageSize size, VmId vm, ProcessId pid);

    CoalescedTlbConfig tlbConfig;
    std::vector<std::unique_ptr<PageWalker>> &pageWalkers;
    std::size_t sets;
    std::vector<Entry> entries; /**< sets × associativity. */
    std::uint64_t tick = 0;     /**< LRU clock. */

    Counter hits;
    Counter walks;
    /** Walk results merged into an existing entry's run. */
    Counter merges;
    /** Runs re-anchored because observed contiguity broke. */
    Counter splits;
    Counter coalescedHitCycles;
    Counter walkPathCycles;
    Average missCycles;
    Log2Histogram missCycleHist;
    StatGroup statGroup;
};

} // namespace pomtlb

#endif // POMTLB_SCHEMES_COALESCED_SCHEME_HH
